//! An NVRAM burst buffer in front of the disk — the deep-memory-hierarchy
//! organization of Gamell et al. (the paper's ref [26]).
//!
//! Writes land in a fast byte-addressable tier at NVRAM speed with no
//! journal barriers; a drain pass later streams the staged files to the
//! backing filesystem as large *sequential* writes. For the paper's
//! fsync-every-chunk workload this converts ~90 ms of positioning per
//! 128 KiB chunk into one streaming pass — the mechanism that lets a
//! post-processing pipeline keep its raw data while approaching in-situ
//! energy (see `Variant::BurstBufferPost` in `greenness-core`).
//!
//! Data honesty: staged bytes are held verbatim and written through the
//! real filesystem at drain, so read-back verification still covers the
//! whole path.

use greenness_platform::disk::{DiskModel, IoDir};
use greenness_platform::{AccessPattern, Node, Phase};

use crate::fs::{CostedDevice, FileSystem, FsError};

/// The staging tier: a capacity-bounded NVRAM region holding whole files
/// until they are drained to the backing store.
#[derive(Debug)]
pub struct BurstBuffer {
    tier: DiskModel,
    capacity_bytes: u64,
    staged: Vec<(String, Vec<u8>)>,
    staged_bytes: u64,
    drained_bytes: u64,
}

impl BurstBuffer {
    /// A burst buffer of `capacity_bytes` backed by the NVRAM device model.
    pub fn new(capacity_bytes: u64) -> BurstBuffer {
        BurstBuffer {
            tier: DiskModel::nvram_256gb(),
            capacity_bytes,
            staged: Vec::new(),
            staged_bytes: 0,
            drained_bytes: 0,
        }
    }

    /// Bytes currently staged.
    pub fn staged_bytes(&self) -> u64 {
        self.staged_bytes
    }

    /// Bytes drained to the backing store so far.
    pub fn drained_bytes(&self) -> u64 {
        self.drained_bytes
    }

    /// Charge `node` for an NVRAM-tier transfer: the node's disk stays
    /// idle; the tier's dynamic power rides on the disk channel (it is
    /// storage hardware).
    fn charge_tier(&self, node: &mut Node, bytes: u64, dir: IoDir, phase: Phase) {
        let cost = self.tier.transfer(bytes, dir, AccessPattern::Sequential);
        let mut draw = node.idle_draw();
        draw.disk_w += self.tier.idle_w + cost.dyn_w;
        // Staging also costs a memory copy.
        draw.dram_w += 0.5;
        node.execute_raw(cost.seconds, draw, phase);
    }

    /// Stage a whole file (append not supported — pipelines stage complete
    /// snapshots). If the new file would overflow the buffer, the oldest
    /// staged files are force-drained to `fs` first (a blocking partial
    /// drain, as real burst buffers do under pressure).
    pub fn stage<D: CostedDevice>(
        &mut self,
        node: &mut Node,
        fs: &mut FileSystem<D>,
        name: &str,
        data: &[u8],
        phase: Phase,
    ) -> Result<(), FsError> {
        assert!(
            data.len() as u64 <= self.capacity_bytes,
            "file larger than the burst buffer"
        );
        while self.staged_bytes + data.len() as u64 > self.capacity_bytes {
            self.drain_one(node, fs, phase)?;
        }
        self.charge_tier(node, data.len() as u64, IoDir::Write, phase);
        self.staged.push((name.to_string(), data.to_vec()));
        self.staged_bytes += data.len() as u64;
        Ok(())
    }

    /// Drain the oldest staged file into the backing filesystem as one
    /// sequential write + fsync.
    fn drain_one<D: CostedDevice>(
        &mut self,
        node: &mut Node,
        fs: &mut FileSystem<D>,
        phase: Phase,
    ) -> Result<(), FsError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let (name, data) = self.staged.remove(0);
        self.staged_bytes -= data.len() as u64;
        // Read back out of the tier...
        self.charge_tier(node, data.len() as u64, IoDir::Read, phase);
        // ...and stream it to the disk in one piece.
        fs.write(node, &name, 0, &data, phase)?;
        fs.fsync(node, &name, phase)?;
        self.drained_bytes += data.len() as u64;
        Ok(())
    }

    /// Drain everything (the end-of-phase flush).
    pub fn drain_all<D: CostedDevice>(
        &mut self,
        node: &mut Node,
        fs: &mut FileSystem<D>,
        phase: Phase,
    ) -> Result<(), FsError> {
        while !self.staged.is_empty() {
            self.drain_one(node, fs, phase)?;
        }
        Ok(())
    }

    /// Read a file: served from the staging tier if still resident,
    /// otherwise `None` (caller falls back to the filesystem).
    pub fn read_staged(&self, node: &mut Node, name: &str, phase: Phase) -> Option<Vec<u8>> {
        let (_, data) = self.staged.iter().find(|(n, _)| n == name)?;
        self.charge_tier(node, data.len() as u64, IoDir::Read, phase);
        Some(data.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::MemBlockDevice;
    use crate::fs::FsConfig;
    use greenness_platform::HardwareSpec;

    fn setup(buffer_bytes: u64) -> (Node, FileSystem<MemBlockDevice>, BurstBuffer) {
        (
            Node::new(HardwareSpec::table1()),
            FileSystem::format(
                MemBlockDevice::with_capacity_bytes(256 * 1024 * 1024),
                FsConfig::default(),
            ),
            BurstBuffer::new(buffer_bytes),
        )
    }

    #[test]
    fn staging_is_far_cheaper_than_chunked_fsync() {
        let (mut node, mut fs, mut bb) = setup(64 * 1024 * 1024);
        let data = vec![3u8; 2 * 1024 * 1024];
        // Staged write.
        let t0 = node.now();
        bb.stage(&mut node, &mut fs, "snap", &data, Phase::Write)
            .unwrap();
        let staged_cost = (node.now() - t0).as_secs_f64();
        // Direct chunked-fsync write of the same data.
        let t1 = node.now();
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + 128 * 1024).min(data.len());
            fs.write(
                &mut node,
                "direct",
                off as u64,
                &data[off..end],
                Phase::Write,
            )
            .unwrap();
            fs.fsync(&mut node, "direct", Phase::Write).unwrap();
            off = end;
        }
        let direct_cost = (node.now() - t1).as_secs_f64();
        assert!(
            staged_cost < direct_cost / 50.0,
            "staged {staged_cost}s vs direct {direct_cost}s"
        );
    }

    #[test]
    fn drain_preserves_bytes_through_the_real_fs() {
        let (mut node, mut fs, mut bb) = setup(64 * 1024 * 1024);
        let data: Vec<u8> = (0..500_000).map(|i| (i % 249) as u8).collect();
        bb.stage(&mut node, &mut fs, "snap", &data, Phase::Write)
            .unwrap();
        bb.drain_all(&mut node, &mut fs, Phase::Write).unwrap();
        assert_eq!(bb.staged_bytes(), 0);
        assert_eq!(bb.drained_bytes(), data.len() as u64);
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let back = fs
            .read(&mut node, "snap", 0, data.len() as u64, Phase::Read)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn drained_files_are_contiguous_and_read_sequentially() {
        let (mut node, mut fs, mut bb) = setup(64 * 1024 * 1024);
        let data = vec![7u8; 2 * 1024 * 1024];
        bb.stage(&mut node, &mut fs, "snap", &data, Phase::Write)
            .unwrap();
        bb.drain_all(&mut node, &mut fs, Phase::Write).unwrap();
        assert_eq!(fs.fragmentation("snap").unwrap(), 1);
        fs.sync(&mut node, Phase::CacheControl);
        fs.drop_caches();
        let t0 = node.now();
        fs.read(&mut node, "snap", 0, data.len() as u64, Phase::Read)
            .unwrap();
        let cold_read = (node.now() - t0).as_secs_f64();
        // One big sequential read: tens of milliseconds, not the ~1.3 s of
        // sixteen cold chunk reads.
        assert!(cold_read < 0.1, "cold read took {cold_read}s");
    }

    #[test]
    fn capacity_pressure_forces_partial_drains() {
        let (mut node, mut fs, mut bb) = setup(3 * 1024 * 1024);
        let snap = vec![1u8; 1024 * 1024];
        for k in 0..5 {
            bb.stage(&mut node, &mut fs, &format!("s{k}"), &snap, Phase::Write)
                .unwrap();
        }
        assert!(bb.staged_bytes() <= 3 * 1024 * 1024);
        assert!(
            bb.drained_bytes() >= 2 * 1024 * 1024,
            "pressure never drained"
        );
        // Everything is still readable: drained from fs, resident from tier.
        bb.drain_all(&mut node, &mut fs, Phase::Write).unwrap();
        for k in 0..5 {
            let back = fs
                .read(
                    &mut node,
                    &format!("s{k}"),
                    0,
                    snap.len() as u64,
                    Phase::Read,
                )
                .unwrap();
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn staged_reads_hit_the_tier() {
        let (mut node, mut fs, mut bb) = setup(16 * 1024 * 1024);
        let data = vec![9u8; 100_000];
        bb.stage(&mut node, &mut fs, "hot", &data, Phase::Write)
            .unwrap();
        let got = bb
            .read_staged(&mut node, "hot", Phase::Read)
            .expect("resident");
        assert_eq!(got, data);
        assert!(bb.read_staged(&mut node, "cold", Phase::Read).is_none());
    }

    #[test]
    #[should_panic(expected = "larger than the burst buffer")]
    fn oversized_files_are_rejected() {
        let (mut node, mut fs, mut bb) = setup(1024);
        let _ = bb.stage(&mut node, &mut fs, "big", &[0u8; 4096], Phase::Write);
    }
}
