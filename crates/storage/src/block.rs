//! Block devices: real byte storage under the filesystem.

/// Device block (and page-cache page) size in bytes, matching the Linux page
/// size of the paper's testbed.
pub const BLOCK_SIZE: u64 = 4096;

/// A fixed-geometry array of blocks. Devices store *data only*; all timing
/// and power accounting happens in the layers above via the platform's
/// [`DiskModel`](greenness_platform::DiskModel).
pub trait BlockDevice {
    /// Number of addressable blocks.
    fn block_count(&self) -> u64;

    /// Copy block `idx` into `buf` (`buf.len() == BLOCK_SIZE`). Unwritten
    /// blocks read as zeros.
    fn read_block(&self, idx: u64, buf: &mut [u8]);

    /// Overwrite block `idx` with `data` (`data.len() == BLOCK_SIZE`).
    fn write_block(&mut self, idx: u64, data: &[u8]);

    /// Device capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.block_count() * BLOCK_SIZE
    }
}

/// An in-memory, sparse block device: blocks materialize on first write and
/// read back exactly; untouched blocks are zero. This is the device under
/// the pipelines' filesystem — every snapshot byte is really stored.
#[derive(Debug, Clone, Default)]
pub struct MemBlockDevice {
    blocks: std::collections::HashMap<u64, Box<[u8]>>,
    count: u64,
}

impl MemBlockDevice {
    /// A device with `count` blocks.
    pub fn new(count: u64) -> Self {
        MemBlockDevice {
            blocks: std::collections::HashMap::new(),
            count,
        }
    }

    /// A device of `bytes` capacity (rounded up to whole blocks).
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(bytes.div_ceil(BLOCK_SIZE))
    }

    /// Number of blocks actually materialized (written at least once).
    pub fn materialized_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl BlockDevice for MemBlockDevice {
    fn block_count(&self) -> u64 {
        self.count
    }

    fn read_block(&self, idx: u64, buf: &mut [u8]) {
        assert!(
            idx < self.count,
            "block {idx} out of range ({})",
            self.count
        );
        assert_eq!(buf.len() as u64, BLOCK_SIZE);
        match self.blocks.get(&idx) {
            Some(b) => buf.copy_from_slice(b),
            None => buf.fill(0),
        }
    }

    fn write_block(&mut self, idx: u64, data: &[u8]) {
        assert!(
            idx < self.count,
            "block {idx} out of range ({})",
            self.count
        );
        assert_eq!(data.len() as u64, BLOCK_SIZE);
        self.blocks.insert(idx, data.to_vec().into_boxed_slice());
    }
}

/// A data-less device for capacity-scale benchmark jobs (the 4 GiB Table III
/// fio runs): writes are discarded, reads return zeros. Equivalent to fio's
/// raw direct-I/O mode where content is meaningless by construction; the
/// *timing and power* model is exercised identically to [`MemBlockDevice`].
#[derive(Debug, Clone)]
pub struct NullBlockDevice {
    count: u64,
}

impl NullBlockDevice {
    /// A device with `count` blocks.
    pub fn new(count: u64) -> Self {
        NullBlockDevice { count }
    }

    /// A device of `bytes` capacity (rounded up to whole blocks).
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        Self::new(bytes.div_ceil(BLOCK_SIZE))
    }
}

impl BlockDevice for NullBlockDevice {
    fn block_count(&self) -> u64 {
        self.count
    }

    fn read_block(&self, idx: u64, buf: &mut [u8]) {
        assert!(idx < self.count);
        buf.fill(0);
    }

    fn write_block(&mut self, idx: u64, _data: &[u8]) {
        assert!(idx < self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_round_trips_blocks() {
        let mut d = MemBlockDevice::new(16);
        let data = vec![0xabu8; BLOCK_SIZE as usize];
        d.write_block(3, &data);
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        d.read_block(3, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(d.materialized_blocks(), 1);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = MemBlockDevice::new(16);
        let mut buf = vec![0xffu8; BLOCK_SIZE as usize];
        d.read_block(0, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn capacity_rounds_up() {
        let d = MemBlockDevice::with_capacity_bytes(BLOCK_SIZE + 1);
        assert_eq!(d.block_count(), 2);
        assert_eq!(d.capacity_bytes(), 2 * BLOCK_SIZE);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let d = MemBlockDevice::new(4);
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        d.read_block(4, &mut buf);
    }

    #[test]
    fn null_device_discards_and_zeros() {
        let mut d = NullBlockDevice::with_capacity_bytes(8 * BLOCK_SIZE);
        d.write_block(1, &vec![7u8; BLOCK_SIZE as usize]);
        let mut buf = vec![9u8; BLOCK_SIZE as usize];
        d.read_block(1, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }
}
