//! A multi-tier block store behind the [`crate::FileSystem`] path.
//!
//! A [`TieredStore`] stacks real block devices fastest-first (e.g. DRAM →
//! NVMe → HDD) behind one logical block address space. Data honesty is the
//! ground rule: every logical block lives on exactly one tier's
//! [`MemBlockDevice`], reads return the real stored bytes, and migrations
//! copy-then-commit so an interrupted move can never lose the only copy.
//!
//! Costing goes through the [`CostedDevice`] trait: the filesystem hands
//! over the touched blocks in file order, the store splits them by tier,
//! derives each slice's access pattern from the *physical* layout with the
//! same heuristics a flat device uses, and prices it with the tier's own
//! [`DiskModel`]. With a single tier equal to the node's `spec.disk` the
//! resulting time and energy are bit-identical to the flat path — the
//! Table III regression anchor.
//!
//! Migration happens only at explicit **epoch boundaries**
//! ([`TieredStore::end_epoch`]): scores decay, the [`PlacementPolicy`]
//! plans (a pure function — no wall clock), and the store executes the
//! moves, charging each copy honestly and emitting `tier.promote` /
//! `tier.demote` instants plus `tier.<name>.bytes` / `tier.<name>.hits`
//! counters. Determinism end to end: same workload, same policy, same
//! fault seed ⇒ byte-identical journal at any `--jobs` value.

use std::collections::BTreeMap;

use greenness_faults::FaultInjector;
use greenness_platform::disk::{DiskModel, DiskOpCost, IoDir};
use greenness_platform::{AccessPattern, Node, Phase, PowerDraw};
use greenness_trace::Value;

use crate::block::{BlockDevice, MemBlockDevice, BLOCK_SIZE};
use crate::fs::{layout_pattern, runs_of, CostedDevice, FsConfig};
use crate::placement::{BlockState, PlacementPolicy, TierUsage};

/// One epoch's clean migrations, batched by (from, to) tier pair into
/// (source phys, destination phys) block lists for elevator-sweep charging.
type SweepAccumulator = BTreeMap<(usize, usize), (Vec<u64>, Vec<u64>)>;

/// Declarative description of one tier.
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Short name used in counters and reports (`"dram"`, `"nvme"`, …).
    pub name: String,
    /// The tier's device model.
    pub model: DiskModel,
    /// Physical capacity in blocks.
    pub capacity_blocks: u64,
}

impl TierSpec {
    /// A tier named `name` of `capacity_bytes`, priced by `model`.
    pub fn new(name: &str, model: DiskModel, capacity_bytes: u64) -> Self {
        TierSpec {
            name: name.to_string(),
            model,
            capacity_blocks: capacity_bytes.div_ceil(BLOCK_SIZE),
        }
    }
}

/// Per-tier transfer totals, for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierCounters {
    /// Tier name.
    pub name: String,
    /// Bytes read from this tier.
    pub bytes_read: u64,
    /// Bytes written to this tier (including migration landings).
    pub bytes_written: u64,
    /// Logical-block touches served by this tier.
    pub hits: u64,
}

/// Decayed access statistics for one logical block.
#[derive(Debug, Clone, Copy, Default)]
struct BlockScore {
    score: f64,
    hits_this_epoch: u64,
}

/// Intern a counter name: `MetricsRegistry` keys are `&'static str`, tier
/// names are runtime strings. The set of distinct names is tiny (one per
/// device-zoo entry), so a global dedup table bounds the leak.
fn intern(s: String) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().expect("intern table poisoned");
    if let Some(&existing) = set.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    set.insert(leaked);
    leaked
}

struct Tier {
    spec: TierSpec,
    dev: MemBlockDevice,
    /// Free runs: start block → run length.
    free: BTreeMap<u64, u64>,
    bytes_counter: &'static str,
    hits_counter: &'static str,
    bytes_read: u64,
    bytes_written: u64,
    hits: u64,
}

impl Tier {
    fn new(spec: TierSpec) -> Self {
        let mut free = BTreeMap::new();
        if spec.capacity_blocks > 0 {
            free.insert(0, spec.capacity_blocks);
        }
        Tier {
            dev: MemBlockDevice::new(spec.capacity_blocks),
            free,
            bytes_counter: intern(format!("tier.{}.bytes", spec.name)),
            hits_counter: intern(format!("tier.{}.hits", spec.name)),
            spec,
            bytes_read: 0,
            bytes_written: 0,
            hits: 0,
        }
    }

    fn free_blocks(&self) -> u64 {
        self.free.values().sum()
    }

    /// Take the lowest free physical block.
    fn alloc_one(&mut self) -> Option<u64> {
        let (&start, &len) = self.free.iter().next()?;
        self.free.remove(&start);
        if len > 1 {
            self.free.insert(start + 1, len - 1);
        }
        Some(start)
    }

    /// Return a physical block to the free map, coalescing neighbors.
    fn free_one(&mut self, idx: u64) {
        self.free.insert(idx, 1);
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        for (&start, &len) in &self.free {
            match merged.iter_mut().next_back() {
                Some((&last_start, last_len)) if last_start + *last_len >= start => {
                    *last_len = (*last_len).max(start + len - last_start);
                }
                _ => {
                    merged.insert(start, len);
                }
            }
        }
        self.free = merged;
    }
}

/// The multi-tier store. See the module docs for the contract.
pub struct TieredStore {
    tiers: Vec<Tier>,
    /// Logical block → (tier index, physical block).
    map: BTreeMap<u64, (usize, u64)>,
    scores: BTreeMap<u64, BlockScore>,
    policy: Box<dyn PlacementPolicy>,
    epoch: u64,
    /// Score decay applied at each epoch boundary before planning.
    decay: f64,
    promotes: u64,
    demotes: u64,
    migration_faults: u64,
    io_retries: u64,
    io_fault_injector: Option<FaultInjector>,
    migration_fault_injector: Option<FaultInjector>,
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field(
                "tiers",
                &self
                    .tiers
                    .iter()
                    .map(|t| t.spec.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .field("epoch", &self.epoch)
            .field("mapped_blocks", &self.map.len())
            .finish()
    }
}

impl TieredStore {
    /// Stack `tiers` (fastest first; the last is the bottom/slowest tier,
    /// conventionally the node's `spec.disk`) under `policy`.
    pub fn new(tiers: Vec<TierSpec>, policy: Box<dyn PlacementPolicy>) -> Self {
        assert!(!tiers.is_empty(), "a TieredStore needs at least one tier");
        TieredStore {
            tiers: tiers.into_iter().map(Tier::new).collect(),
            map: BTreeMap::new(),
            scores: BTreeMap::new(),
            policy,
            epoch: 0,
            decay: 0.5,
            promotes: 0,
            demotes: 0,
            migration_faults: 0,
            io_retries: 0,
            io_fault_injector: None,
            migration_fault_injector: None,
        }
    }

    /// A single-tier store over the node's own disk model — the flat
    /// baseline expressed in tiered clothing (used by the Table III
    /// regression oracle).
    pub fn single(name: &str, model: DiskModel, capacity_bytes: u64) -> Self {
        TieredStore::new(
            vec![TierSpec::new(name, model, capacity_bytes)],
            Box::new(crate::placement::NoopPolicy),
        )
    }

    /// Install (or clear) the per-tier fault schedules: `io` drives
    /// transparent transfer retries (`Site::TierIo`), `migration` drives
    /// torn/aborted migrations (`Site::TierMigration`).
    pub fn set_fault_injectors(
        &mut self,
        io: Option<FaultInjector>,
        migration: Option<FaultInjector>,
    ) {
        self.io_fault_injector = io;
        self.migration_fault_injector = migration;
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The active policy's label.
    pub fn policy_label(&self) -> &'static str {
        self.policy.label()
    }

    /// Promotions executed.
    pub fn promotes(&self) -> u64 {
        self.promotes
    }

    /// Demotions executed.
    pub fn demotes(&self) -> u64 {
        self.demotes
    }

    /// Migrations lost to injected faults (torn or aborted).
    pub fn migration_faults(&self) -> u64 {
        self.migration_faults
    }

    /// Transparent transfer retries forced by injected device errors.
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Per-tier transfer totals.
    pub fn counters(&self) -> Vec<TierCounters> {
        self.tiers
            .iter()
            .map(|t| TierCounters {
                name: t.spec.name.clone(),
                bytes_read: t.bytes_read,
                bytes_written: t.bytes_written,
                hits: t.hits,
            })
            .collect()
    }

    /// Occupancy snapshot, fastest first.
    pub fn usage(&self) -> Vec<TierUsage> {
        self.tiers
            .iter()
            .map(|t| TierUsage {
                name: t.spec.name.clone(),
                model: t.spec.model.clone(),
                capacity_blocks: t.spec.capacity_blocks,
                used_blocks: t.spec.capacity_blocks - t.free_blocks(),
            })
            .collect()
    }

    /// Combined idle draw of every tier *above* the bottom one, watts. The
    /// bottom tier is assumed to be the node's `spec.disk` (already part of
    /// `idle_draw`); the faster tiers' idle power is charged on top during
    /// store operations, and reported as extra static power by the
    /// placement report for the whole makespan.
    pub fn idle_w_above_bottom(&self) -> f64 {
        self.tiers[..self.tiers.len() - 1]
            .iter()
            .map(|t| t.spec.model.idle_w)
            .sum()
    }

    /// Which tier currently holds `logical`, if mapped.
    pub fn tier_of(&self, logical: u64) -> Option<usize> {
        self.map.get(&logical).map(|&(t, _)| t)
    }

    /// Map `logical` to a physical home, placing it on first touch. Falls
    /// down (then up) from the policy's preferred tier until a tier has a
    /// free block; total physical capacity equals the logical space, so a
    /// slot always exists.
    fn ensure_placed(&mut self, logical: u64) -> (usize, u64) {
        if let Some(&loc) = self.map.get(&logical) {
            return loc;
        }
        let usage = self.usage();
        let pref = self
            .policy
            .place_new(logical, &usage)
            .min(self.tiers.len() - 1);
        for t in (pref..self.tiers.len()).chain((0..pref).rev()) {
            if let Some(phys) = self.tiers[t].alloc_one() {
                self.map.insert(logical, (t, phys));
                return (t, phys);
            }
        }
        panic!("TieredStore out of physical blocks");
    }

    /// One priced span on tier `t`, composed exactly like
    /// `Node::cost_of`'s buffered-disk arm so a single-tier store matches
    /// the flat path bit for bit.
    fn charge_span(
        &mut self,
        node: &mut Node,
        t: usize,
        bytes: u64,
        dir: IoDir,
        cost: DiskOpCost,
        phase: Phase,
    ) {
        let is_read = dir == IoDir::Read;
        let extra_idle_w = self.idle_w_above_bottom();
        let spec = node.spec();
        let package_w = spec.cpu.io_busy_w(is_read) + node.monitoring_overhead_w();
        let dram_w = spec.dram.background_w + spec.dram.dynamic_w(bytes * 2, cost.seconds);
        let disk_w = spec.disk.idle_w + extra_idle_w + cost.dyn_w;
        let board_w = spec.board_w;
        node.execute_raw(
            cost.seconds,
            PowerDraw {
                package_w,
                dram_w,
                disk_w,
                net_w: 0.0,
                board_w,
            },
            phase,
        );
        let tier = &mut self.tiers[t];
        match dir {
            IoDir::Read => tier.bytes_read += bytes,
            IoDir::Write => tier.bytes_written += bytes,
        }
        node.tracer().count(tier.bytes_counter, bytes);
    }

    /// Charge one migrated block (`4 KiB` random touch) on tier `t`.
    fn charge_migration_block(&mut self, node: &mut Node, t: usize, dir: IoDir, phase: Phase) {
        let cost = self.tiers[t].spec.model.transfer(
            BLOCK_SIZE,
            dir,
            AccessPattern::Random {
                op_bytes: BLOCK_SIZE,
                queue_depth: 1,
            },
        );
        self.charge_span(node, t, BLOCK_SIZE, dir, cost, phase);
    }

    /// Close the current epoch: decay scores, let the policy plan, execute
    /// the migrations (copy-then-commit, fault-aware), and reset per-epoch
    /// hit counts. Deterministic: decisions depend only on (epoch, access
    /// stats, occupancy) — never on wall clock or thread timing.
    pub fn end_epoch(&mut self, node: &mut Node, phase: Phase) {
        self.epoch += 1;
        let decay = self.decay;
        for s in self.scores.values_mut() {
            s.score = s.score * decay + s.hits_this_epoch as f64;
            s.hits_this_epoch = 0;
        }
        let mut states: BTreeMap<u64, BlockState> = BTreeMap::new();
        for (&lb, &(t, _)) in &self.map {
            states.insert(
                lb,
                BlockState {
                    tier: t,
                    score: self.scores.get(&lb).map_or(0.0, |s| s.score),
                },
            );
        }
        let plan = self.policy.plan(self.epoch, &states, &self.usage());
        let mut sweeps: SweepAccumulator = BTreeMap::new();
        for m in plan {
            self.execute_move(node, m.logical, m.to, phase, &mut sweeps);
        }
        // Migration I/O is charged as per-tier elevator sweeps: all the
        // epoch's clean moves between one (from, to) pair, sorted by
        // physical address and priced with the layout-derived pattern — a
        // background mover streams runs, it does not pay a full seek per
        // 4 KiB block. Sweep order is the BTreeMap's (from, to) order:
        // deterministic, independent of plan order.
        let cfg = FsConfig::default();
        for ((from, to), (src, dst)) in sweeps {
            self.charge_sweep(node, from, src, IoDir::Read, &cfg, phase);
            self.charge_sweep(node, to, dst, IoDir::Write, &cfg, phase);
        }
    }

    /// Charge one side of a migration sweep on tier `t` over `phys` blocks.
    fn charge_sweep(
        &mut self,
        node: &mut Node,
        t: usize,
        mut phys: Vec<u64>,
        dir: IoDir,
        cfg: &FsConfig,
        phase: Phase,
    ) {
        if phys.is_empty() {
            return;
        }
        phys.sort_unstable();
        let bytes = phys.len() as u64 * BLOCK_SIZE;
        let runs = runs_of(&phys);
        let pattern = layout_pattern(cfg, runs.len(), bytes, dir);
        let cost = self.tiers[t].spec.model.transfer(bytes, dir, pattern);
        self.charge_span(node, t, bytes, dir, cost, phase);
    }

    /// Execute one planned migration. Copy-then-commit: the destination is
    /// written before the mapping flips and the source is freed, so a torn
    /// or aborted move always leaves the source copy authoritative. Clean
    /// moves accumulate into `sweeps` for batched charging; faulted moves
    /// charge their own wasted work immediately.
    fn execute_move(
        &mut self,
        node: &mut Node,
        logical: u64,
        to: usize,
        phase: Phase,
        sweeps: &mut SweepAccumulator,
    ) {
        let Some(&(from, src_phys)) = self.map.get(&logical) else {
            return;
        };
        if to == from || to >= self.tiers.len() {
            return;
        }
        let Some(dst_phys) = self.tiers[to].alloc_one() else {
            return; // destination full; the block simply stays put
        };
        if let Some(entropy) = self
            .migration_fault_injector
            .as_mut()
            .and_then(FaultInjector::next)
        {
            let torn = entropy & 1 == 1;
            if torn {
                // The copy ran (and cost real work) but tore before the
                // commit; the half-written destination is abandoned.
                self.charge_migration_block(node, from, IoDir::Read, phase);
                self.charge_migration_block(node, to, IoDir::Write, phase);
            }
            self.tiers[to].free_one(dst_phys);
            self.migration_faults += 1;
            let tracer = node.tracer();
            tracer.count("faults.tier.migration", 1);
            if tracer.is_on() {
                tracer.instant(
                    node.now().as_nanos(),
                    "fault.injected",
                    vec![
                        ("site", Value::from("tier.migration")),
                        ("mode", Value::from(if torn { "torn" } else { "transient" })),
                        ("logical", Value::from(logical as usize)),
                    ],
                );
            }
            return;
        }
        let mut buf = [0u8; BLOCK_SIZE as usize];
        self.tiers[from].dev.read_block(src_phys, &mut buf);
        self.tiers[to].dev.write_block(dst_phys, &buf);
        let sweep = sweeps.entry((from, to)).or_default();
        sweep.0.push(src_phys);
        sweep.1.push(dst_phys);
        // Commit: flip the mapping, then release the source copy.
        self.map.insert(logical, (to, dst_phys));
        self.tiers[from].free_one(src_phys);
        let promote = to < from;
        if promote {
            self.promotes += 1;
        } else {
            self.demotes += 1;
        }
        let ev = if promote {
            "tier.promote"
        } else {
            "tier.demote"
        };
        let tracer = node.tracer();
        tracer.count(
            if promote {
                "tier.promotes"
            } else {
                "tier.demotes"
            },
            1,
        );
        if tracer.is_on() {
            let from_name = self.tiers[from].spec.name.clone();
            let to_name = self.tiers[to].spec.name.clone();
            tracer.instant(
                node.now().as_nanos(),
                ev,
                vec![
                    ("logical", Value::from(logical as usize)),
                    ("from", Value::from(from_name)),
                    ("to", Value::from(to_name)),
                ],
            );
        }
    }
}

impl BlockDevice for TieredStore {
    fn block_count(&self) -> u64 {
        self.tiers.iter().map(|t| t.spec.capacity_blocks).sum()
    }

    fn read_block(&self, idx: u64, buf: &mut [u8]) {
        assert!(idx < self.block_count(), "block {idx} out of range");
        match self.map.get(&idx) {
            Some(&(t, phys)) => self.tiers[t].dev.read_block(phys, buf),
            None => buf.copy_from_slice(&[0u8; BLOCK_SIZE as usize]),
        }
    }

    fn write_block(&mut self, idx: u64, data: &[u8]) {
        assert!(idx < self.block_count(), "block {idx} out of range");
        let (t, phys) = self.ensure_placed(idx);
        self.tiers[t].dev.write_block(phys, data);
    }
}

impl CostedDevice for TieredStore {
    fn charge_transfer(
        &mut self,
        node: &mut Node,
        blocks: &[u64],
        dir: IoDir,
        cfg: &FsConfig,
        phase: Phase,
    ) {
        if blocks.is_empty() {
            return;
        }
        // First device touch decides a home (writebacks are charged before
        // the pages physically land).
        for &lb in blocks {
            self.ensure_placed(lb);
        }
        // Device-level access statistics feed the policy.
        for &lb in blocks {
            self.scores.entry(lb).or_default().hits_this_epoch += 1;
        }
        // Split by tier, preserving file order within each slice.
        let mut per_tier: Vec<Vec<u64>> = vec![Vec::new(); self.tiers.len()];
        for &lb in blocks {
            let (t, phys) = self.map[&lb];
            per_tier[t].push(phys);
        }
        for (t, phys) in per_tier.into_iter().enumerate() {
            if phys.is_empty() {
                continue;
            }
            let bytes = phys.len() as u64 * BLOCK_SIZE;
            let runs = runs_of(&phys);
            node.tracer()
                .count("disk.seeks", runs.len().saturating_sub(1) as u64);
            let pattern = layout_pattern(cfg, runs.len(), bytes, dir);
            let cost = self.tiers[t].spec.model.transfer(bytes, dir, pattern);
            self.charge_span(node, t, bytes, dir, cost, phase);
            self.tiers[t].hits += phys.len() as u64;
            node.tracer()
                .count(self.tiers[t].hits_counter, phys.len() as u64);
            // A transient device error forces one transparent controller
            // retry: the transfer is paid twice, the data is fine.
            if self
                .io_fault_injector
                .as_mut()
                .and_then(FaultInjector::next)
                .is_some()
            {
                self.charge_span(node, t, bytes, dir, cost, phase);
                self.io_retries += 1;
                let tracer = node.tracer();
                tracer.count("faults.tier.io", 1);
                tracer.count("retries.tier.io", 1);
                if tracer.is_on() {
                    let name = self.tiers[t].spec.name.clone();
                    tracer.instant(
                        node.now().as_nanos(),
                        "fault.injected",
                        vec![
                            ("site", Value::from("tier.io")),
                            ("mode", Value::from("transient")),
                            ("tier", Value::from(name)),
                        ],
                    );
                }
            }
        }
    }

    fn charge_barrier(&mut self, node: &mut Node, seeks: u32, blocks: &[u64], phase: Phase) {
        // The journal commit lands on the slowest tier involved in the
        // flush (the commit record lives with the data); a metadata-only
        // barrier pays the bottom tier.
        let t = blocks
            .iter()
            .filter_map(|lb| self.map.get(lb).map(|&(t, _)| t))
            .max()
            .unwrap_or(self.tiers.len() - 1);
        let cost = self.tiers[t].spec.model.barrier(seeks);
        let extra_idle_w = self.idle_w_above_bottom();
        let spec = node.spec();
        let package_w = if seeks > 0 {
            spec.cpu.io_busy_w(false) + node.monitoring_overhead_w()
        } else {
            spec.cpu.idle_w() + node.monitoring_overhead_w()
        };
        let dram_w = spec.dram.background_w;
        let disk_w = spec.disk.idle_w + extra_idle_w + cost.dyn_w;
        let board_w = spec.board_w;
        node.execute_raw(
            cost.seconds,
            PowerDraw {
                package_w,
                dram_w,
                disk_w,
                net_w: 0.0,
                board_w,
            },
            phase,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{FreqRecencyPolicy, NoopPolicy};
    use greenness_platform::HardwareSpec;

    fn dram_hdd() -> TieredStore {
        TieredStore::new(
            vec![
                TierSpec::new("dram", DiskModel::dram_tier_32gb(), 16 * BLOCK_SIZE),
                TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 1024 * BLOCK_SIZE),
            ],
            Box::new(FreqRecencyPolicy::default()),
        )
    }

    fn node() -> Node {
        Node::new(HardwareSpec::table1())
    }

    #[test]
    fn blocks_round_trip_and_unwritten_reads_zero() {
        let mut store = dram_hdd();
        let data = [7u8; BLOCK_SIZE as usize];
        store.write_block(42, &data);
        let mut back = [0u8; BLOCK_SIZE as usize];
        store.read_block(42, &mut back);
        assert_eq!(back, data);
        store.read_block(43, &mut back);
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn hot_blocks_promote_and_survive_with_bytes_intact() {
        let mut store = dram_hdd();
        let mut n = node();
        let cfg = FsConfig::default();
        let mut payload = [0u8; BLOCK_SIZE as usize];
        for lb in 0..8u64 {
            payload[0] = lb as u8;
            store.write_block(lb, &payload);
        }
        assert_eq!(store.tier_of(3), Some(1), "new blocks land on the bottom");
        // Hammer blocks 0..4 across two epochs.
        for _ in 0..3 {
            store.charge_transfer(&mut n, &[0, 1, 2, 3], IoDir::Read, &cfg, Phase::Read);
            store.end_epoch(&mut n, Phase::Read);
        }
        assert!(store.promotes() > 0, "hot blocks must promote");
        assert_eq!(store.tier_of(0), Some(0), "block 0 is hot → dram");
        assert_eq!(store.tier_of(7), Some(1), "block 7 is cold → hdd");
        let mut back = [0u8; BLOCK_SIZE as usize];
        for lb in 0..8u64 {
            store.read_block(lb, &mut back);
            assert_eq!(back[0], lb as u8, "block {lb} corrupted by migration");
        }
    }

    #[test]
    fn torn_migration_never_loses_the_only_copy() {
        use greenness_faults::{FaultPlan, Site};
        let mut store = dram_hdd();
        let plan = FaultPlan {
            tier_migration_rate: 1.0,
            ..FaultPlan::with_seed(13)
        };
        store.set_fault_injectors(None, Some(plan.injector(Site::TierMigration, 0)));
        let mut n = node();
        let cfg = FsConfig::default();
        let mut payload = [0u8; BLOCK_SIZE as usize];
        for lb in 0..6u64 {
            payload[0] = 0xA0 | lb as u8;
            store.write_block(lb, &payload);
        }
        for _ in 0..4 {
            store.charge_transfer(&mut n, &[0, 1, 2], IoDir::Read, &cfg, Phase::Read);
            store.end_epoch(&mut n, Phase::Read);
        }
        assert!(store.migration_faults() > 0, "rate-1.0 plan must fire");
        assert_eq!(store.promotes(), 0, "every migration was torn or aborted");
        let mut back = [0u8; BLOCK_SIZE as usize];
        for lb in 0..6u64 {
            store.read_block(lb, &mut back);
            assert_eq!(back[0], 0xA0 | lb as u8, "block {lb} lost to a torn move");
        }
    }

    #[test]
    fn single_hdd_tier_matches_flat_charging_bit_for_bit() {
        // The Table III anchor: one tier, same model as spec.disk, noop
        // policy ⇒ the same virtual time and energy as the flat device.
        let cfg = FsConfig::default();
        let blocks: Vec<u64> = (100..164).collect();
        let mut flat = node();
        crate::fs::flat_charge_transfer(&mut flat, &blocks, IoDir::Read, &cfg, Phase::Read);
        let mut tiered = node();
        let mut store =
            TieredStore::single("hdd", DiskModel::seagate_7200rpm_500gb(), 512 * 1024 * 1024);
        for &lb in &blocks {
            store.write_block(lb, &[0u8; BLOCK_SIZE as usize]);
        }
        store.charge_transfer(&mut tiered, &blocks, IoDir::Read, &cfg, Phase::Read);
        assert_eq!(flat.now().as_nanos(), tiered.now().as_nanos());
        assert_eq!(
            flat.timeline().total_energy_j().to_bits(),
            tiered.timeline().total_energy_j().to_bits()
        );
    }

    #[test]
    fn epoch_boundaries_are_deterministic() {
        let run = || {
            let mut store = dram_hdd();
            let mut n = node();
            let cfg = FsConfig::default();
            for lb in 0..12u64 {
                store.write_block(lb, &[1u8; BLOCK_SIZE as usize]);
            }
            for round in 0..5u64 {
                let touched: Vec<u64> = (0..4 + (round % 3)).collect();
                store.charge_transfer(&mut n, &touched, IoDir::Read, &cfg, Phase::Read);
                store.end_epoch(&mut n, Phase::Read);
            }
            (
                n.now().as_nanos(),
                store.promotes(),
                store.demotes(),
                store
                    .counters()
                    .iter()
                    .map(|c| (c.bytes_read, c.bytes_written, c.hits))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noop_policy_never_migrates() {
        let mut store = TieredStore::new(
            vec![
                TierSpec::new("dram", DiskModel::dram_tier_32gb(), 16 * BLOCK_SIZE),
                TierSpec::new("hdd", DiskModel::seagate_7200rpm_500gb(), 256 * BLOCK_SIZE),
            ],
            Box::new(NoopPolicy),
        );
        let mut n = node();
        let cfg = FsConfig::default();
        for lb in 0..8u64 {
            store.write_block(lb, &[2u8; BLOCK_SIZE as usize]);
        }
        for _ in 0..4 {
            store.charge_transfer(&mut n, &[0, 1], IoDir::Read, &cfg, Phase::Read);
            store.end_epoch(&mut n, Phase::Read);
        }
        assert_eq!(store.promotes() + store.demotes(), 0);
        assert!(store.usage()[0].used_blocks == 0, "dram tier stays empty");
    }

    #[test]
    fn tier_io_faults_cost_time_but_not_data() {
        use greenness_faults::{FaultPlan, Site};
        let cfg = FsConfig::default();
        let run = |rate: f64| {
            let mut store = dram_hdd();
            if rate > 0.0 {
                let plan = FaultPlan {
                    tier_io_rate: rate,
                    ..FaultPlan::with_seed(7)
                };
                store.set_fault_injectors(Some(plan.injector(Site::TierIo, 0)), None);
            }
            let mut n = node();
            for lb in 0..32u64 {
                store.write_block(lb, &[9u8; BLOCK_SIZE as usize]);
            }
            let blocks: Vec<u64> = (0..32).collect();
            for _ in 0..8 {
                store.charge_transfer(&mut n, &blocks, IoDir::Read, &cfg, Phase::Read);
            }
            (n.now().as_nanos(), store.io_retries())
        };
        let (clean_t, clean_retries) = run(0.0);
        let (faulted_t, faulted_retries) = run(1.0);
        assert_eq!(clean_retries, 0);
        assert!(faulted_retries > 0);
        assert!(faulted_t > clean_t, "retries are real time");
    }
}
