//! # greenness-codec
//!
//! Snapshot compression for the paper's data-reduction discussion.
//! "Application-Driven Compression for Visualizing Large-Scale Time-Varying
//! Data" (Wang, Yu, Ma — the paper's ref [22]) is cited as one of the
//! techniques that shrink post-processing I/O; this crate provides real,
//! tested codecs so the `compressed post-processing` pipeline variant and
//! the `ablate_compression` bench trade actual CPU work against actual byte
//! counts:
//!
//! * [`rle`] — byte-level run-length coding (effective on rendered images
//!   and constant field regions);
//! * [`delta`] — lossless f64 bit-delta + zigzag varint coding (effective
//!   only on near-identical samples — a deliberately naive baseline);
//! * [`transpose`] — byte-plane transposition + RLE, the standard lossless
//!   trick for floating-point fields (the codec the compressed pipeline
//!   variant uses);
//! * [`quant`] — lossy bounded-error quantization to u16 + delta coding
//!   (the paper's sampling/triage family trades information for bytes; this
//!   codec makes the loss *bounded and measurable*);
//! * [`cost`] — calibrated CPU cost of (de)compression, charged to the
//!   platform like every other activity.

pub mod cost;
pub mod delta;
pub mod quant;
pub mod rle;
pub mod transpose;

pub use cost::CodecCostModel;

/// A byte-stream codec.
pub trait Codec {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Compress `input`.
    fn encode(&self, input: &[u8]) -> Vec<u8>;

    /// Decompress `input`. Returns `None` on malformed streams.
    fn decode(&self, input: &[u8]) -> Option<Vec<u8>>;
}

/// Compression ratio achieved on `input` (original / encoded; > 1 is a win).
pub fn ratio(codec: &dyn Codec, input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    let encoded = codec.encode(input);
    input.len() as f64 / encoded.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::Rle;

    #[test]
    fn ratio_reflects_compressibility() {
        let rle = Rle;
        let runs = vec![7u8; 10_000];
        let noise: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        assert!(ratio(&rle, &runs) > 100.0);
        assert!(ratio(&rle, &noise) < 1.1);
        assert_eq!(ratio(&rle, &[]), 1.0);
    }
}
