//! # greenness-codec
//!
//! Snapshot compression for the paper's data-reduction discussion.
//! "Application-Driven Compression for Visualizing Large-Scale Time-Varying
//! Data" (Wang, Yu, Ma — the paper's ref [22]) is cited as one of the
//! techniques that shrink post-processing I/O; this crate provides real,
//! tested codecs so the `compressed post-processing` pipeline variant and
//! the `ablate_compression` bench trade actual CPU work against actual byte
//! counts:
//!
//! * [`rle`] — byte-level run-length coding (effective on rendered images
//!   and constant field regions);
//! * [`delta`] — lossless f64 bit-delta + zigzag varint coding (effective
//!   only on near-identical samples — a deliberately naive baseline);
//! * [`transpose`] — byte-plane transposition + RLE, the standard lossless
//!   trick for floating-point fields (the codec the compressed pipeline
//!   variant uses);
//! * [`quant`] — lossy bounded-error quantization to u16 (or u8, for
//!   wire compression on the cluster's staging fabric) + delta coding
//!   (the paper's sampling/triage family trades information for bytes; this
//!   codec makes the loss *bounded and measurable*);
//! * [`cost`] — calibrated CPU cost of (de)compression, charged to the
//!   platform like every other activity.
//!
//! Codecs sit on the per-iteration dump path, so encoding supports a
//! buffer-reusing entry point: [`Codec::encode_into`] appends into a
//! caller-owned output `Vec` and recycles [`Scratch`] working buffers —
//! bundle both behind [`ScratchCodec`] and steady-state encoding performs
//! no heap allocation.

use std::fmt;

pub mod cost;
pub mod delta;
pub mod quant;
pub mod rle;
pub mod transpose;

pub use cost::CodecCostModel;

/// Why an encode was rejected. These conditions used to be `assert!`s; they
/// are values now so callers feeding externally-sourced streams can report
/// them instead of crashing. [`Codec::encode`] keeps the panicking contract
/// for call sites with library-validated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The f64 codecs require a whole number of little-endian `f64`s.
    Misaligned {
        /// The offending input length.
        len: usize,
    },
    /// Quantization cannot represent NaN or infinite samples.
    NonFiniteSample {
        /// Index of the first non-finite sample.
        index: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Misaligned { len } => {
                write!(f, "expects a stream of f64s (got {len} bytes)")
            }
            CodecError::NonFiniteSample { index } => {
                write!(f, "quantization requires finite samples (sample {index})")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Reusable working buffers for [`Codec::encode_into`]. One `Scratch` may
/// be shared across codecs and calls; each encode clears what it uses, and
/// the buffers keep their capacity, so a warmed-up scratch makes repeated
/// encoding allocation-free.
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    /// All eight transposed byte planes, filled by one blocked pass over
    /// the input (see `transpose::transpose_planes`).
    pub(crate) planes: [Vec<u8>; 8],
    /// RLE coding of the plane currently being sized.
    pub(crate) plane_rle: Vec<u8>,
    /// Byte-delta transform of the plane currently being sized.
    pub(crate) plane_delta: Vec<u8>,
    /// RLE coding of the delta plane.
    pub(crate) plane_delta_rle: Vec<u8>,
}

/// A byte-stream codec.
pub trait Codec {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Compress `input` into `out` (cleared first), reusing `scratch`
    /// working buffers between calls. With warmed-up buffers this performs
    /// no heap allocation at steady state.
    fn encode_into(
        &self,
        input: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError>;

    /// Compress `input` into a fresh `Vec`. Panics on invalid input
    /// (misaligned / non-finite streams) — the contract call sites with
    /// library-validated data rely on; use [`Codec::encode_into`] to get
    /// the error as a value.
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut scratch = Scratch::default();
        let mut out = Vec::new();
        self.encode_into(input, &mut scratch, &mut out)
            .unwrap_or_else(|e| panic!("{} codec: {e}", self.name()));
        out
    }

    /// Decompress `input`. Returns `None` on malformed streams.
    fn decode(&self, input: &[u8]) -> Option<Vec<u8>>;
}

/// A codec bundled with its own [`Scratch`] and output buffer: after the
/// first call warms the buffers, repeated encodes on same-shaped input
/// perform no heap allocation. This is what `core`'s compressed pipeline
/// variant threads down the per-iteration dump path.
pub struct ScratchCodec {
    codec: Box<dyn Codec>,
    scratch: Scratch,
    out: Vec<u8>,
}

impl ScratchCodec {
    /// Wrap `codec` with fresh (empty) buffers.
    pub fn new(codec: Box<dyn Codec>) -> ScratchCodec {
        ScratchCodec {
            codec,
            scratch: Scratch::default(),
            out: Vec::new(),
        }
    }

    /// The wrapped codec's name.
    pub fn name(&self) -> &'static str {
        self.codec.name()
    }

    /// Encode `input`, reusing this wrapper's buffers. The returned slice
    /// borrows the internal output buffer and is valid until the next call.
    pub fn try_encode(&mut self, input: &[u8]) -> Result<&[u8], CodecError> {
        self.codec
            .encode_into(input, &mut self.scratch, &mut self.out)?;
        Ok(&self.out)
    }

    /// Decode through the wrapped codec (decoding is off the steady-state
    /// dump path, so it keeps the allocating signature).
    pub fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        self.codec.decode(input)
    }
}

/// Compression ratio achieved on `input` (original / encoded; > 1 is a win).
pub fn ratio(codec: &dyn Codec, input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    let encoded = codec.encode(input);
    input.len() as f64 / encoded.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::Rle;
    use crate::transpose::TransposeRle;

    #[test]
    fn ratio_reflects_compressibility() {
        let rle = Rle;
        let runs = vec![7u8; 10_000];
        let noise: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
            .collect();
        assert!(ratio(&rle, &runs) > 100.0);
        assert!(ratio(&rle, &noise) < 1.1);
        assert_eq!(ratio(&rle, &[]), 1.0);
    }

    #[test]
    fn scratch_codec_matches_plain_encode_and_stops_allocating() {
        let field: Vec<u8> = (0..4096u64)
            .flat_map(|i| ((i as f64 * 0.01).sin()).to_le_bytes())
            .collect();
        let mut sc = ScratchCodec::new(Box::new(TransposeRle));
        let warm = sc.try_encode(&field).expect("encode").to_vec();
        assert_eq!(warm, TransposeRle.encode(&field), "buffer reuse drifted");
        // Warmed buffers must be reused, not regrown: capacities stay put
        // across repeated same-shaped encodes.
        let caps = |sc: &ScratchCodec| {
            let plane_caps: Vec<usize> = sc.scratch.planes.iter().map(Vec::capacity).collect();
            (
                sc.out.capacity(),
                plane_caps,
                sc.scratch.plane_rle.capacity(),
                sc.scratch.plane_delta.capacity(),
                sc.scratch.plane_delta_rle.capacity(),
            )
        };
        let warm_caps = caps(&sc);
        for _ in 0..5 {
            let again = sc.try_encode(&field).expect("encode");
            assert_eq!(again, &warm[..]);
        }
        assert_eq!(caps(&sc), warm_caps, "steady state reallocated");
        assert_eq!(sc.decode(&warm).expect("decode"), field);
    }

    #[test]
    fn encode_into_reports_errors_as_values() {
        let mut scratch = Scratch::default();
        let mut out = Vec::new();
        let err = TransposeRle
            .encode_into(&[1, 2, 3], &mut scratch, &mut out)
            .unwrap_err();
        assert_eq!(err, CodecError::Misaligned { len: 3 });
        assert!(err.to_string().contains("stream of f64s"));
    }
}
