//! Byte-level run-length coding.
//!
//! Stream format: a sequence of `(count: u8 >= 1, byte)` pairs. Dead simple,
//! worst case 2× expansion on incompressible data — which the tests and the
//! `ablate_compression` bench make visible rather than hide.

use crate::{Codec, CodecError, Scratch};

/// The run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

/// Append the RLE coding of `input` to a cleared `out`. The run scan is
/// word-at-a-time ([`run_len`]); [`rle_encode_into_reference`] retains the
/// byte-at-a-time scan as the oracle the fast path is tested against.
pub(crate) fn rle_encode_into(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let cap = (input.len() - i).min(255);
        let run = run_len(&input[i..], b, cap);
        out.push(run as u8);
        out.push(b);
        i += run;
    }
}

/// Length of the run of `b` at the head of `input`, capped at `cap`
/// (callers guarantee `input[0] == b` and `1 <= cap <= input.len()`).
/// A single-byte probe handles the common case on noisy planes — a run
/// that ends immediately — for the cost of one compare; longer runs then
/// compare eight bytes per iteration against a splat of `b`, and on a
/// mismatch the first differing byte falls out of `trailing_zeros` of the
/// XOR (little-endian word, so byte `k` occupies bits `8k..8k+8`). The
/// residual tail is scanned byte-wise.
#[inline]
fn run_len(input: &[u8], b: u8, cap: usize) -> usize {
    if cap >= 2 && input[1] != b {
        return 1;
    }
    let splat = u64::from_le_bytes([b; 8]);
    let mut run = 1usize;
    while run + 8 <= cap {
        let word = u64::from_le_bytes(input[run..run + 8].try_into().expect("8-byte chunk"));
        let diff = word ^ splat;
        if diff != 0 {
            return run + (diff.trailing_zeros() / 8) as usize;
        }
        run += 8;
    }
    while run < cap && input[run] == b {
        run += 1;
    }
    run
}

/// A quick **lower bound** on `rle_encode_into(bytes).len()`, used to prune
/// encodings that provably cannot win the per-plane size contest without
/// materializing them. Every position where `bytes[i] != bytes[i + 1]`
/// starts a new run, so the coded length is at least
/// `2 × (boundaries + 1)`; the 255-run cap only ever *adds* runs, so the
/// bound stays valid without modeling it. Boundaries are counted eight at a
/// time: XOR a word against itself shifted one byte, then count the nonzero
/// bytes with the SWAR zero-byte trick (`((x & !MSB) + !MSB) | x` has the
/// high bit of byte `k` set iff byte `k` of `x` is nonzero).
///
/// Returns `limit` as soon as the bound reaches it — on incompressible
/// data that happens about halfway through the plane — so callers pass the
/// length beyond which they no longer care.
pub(crate) fn rle_len_lower_bound(bytes: &[u8], limit: usize) -> usize {
    if bytes.is_empty() {
        return 0;
    }
    const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
    const MSB: u64 = 0x8080_8080_8080_8080;
    let mut runs = 1usize; // the first byte opens a run
    let mut i = 0usize;
    while i + 9 <= bytes.len() {
        if 2 * runs >= limit {
            return limit;
        }
        let a = u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte chunk"));
        let b = u64::from_le_bytes(bytes[i + 1..i + 9].try_into().expect("8-byte chunk"));
        let x = a ^ b;
        let nonzero = ((x & LOW7).wrapping_add(LOW7) | x) & MSB;
        runs += nonzero.count_ones() as usize;
        i += 8;
    }
    while i + 1 < bytes.len() {
        runs += (bytes[i] != bytes[i + 1]) as usize;
        i += 1;
    }
    (2 * runs).min(limit)
}

/// The original `position`-sweep run scan, retained verbatim as the
/// bit-identity reference for [`rle_encode_into`]. Also the baseline the
/// transpose codec's [`crate::transpose::TransposeRle::encode_reference`]
/// oracle encodes through.
pub(crate) fn rle_encode_into_reference(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let cap = (input.len() - i).min(255);
        let run = input[i + 1..i + cap]
            .iter()
            .position(|&x| x != b)
            .map_or(cap, |p| p + 1);
        out.push(run as u8);
        out.push(b);
        i += run;
    }
}

/// Decode `input` expecting exactly `expected` output bytes, bailing with
/// `None` the moment the output would overshoot — so a malformed stream can
/// never balloon the allocation past the caller's bound.
pub(crate) fn rle_decode_exact(input: &[u8], expected: usize) -> Option<Vec<u8>> {
    if input.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(expected);
    for pair in input.chunks_exact(2) {
        let count = pair[0] as usize;
        if count == 0 || out.len() + count > expected {
            return None;
        }
        out.extend(std::iter::repeat(pair[1]).take(count));
    }
    (out.len() == expected).then_some(out)
}

impl Rle {
    /// Encode through the retained byte-at-a-time reference scan. Public so
    /// integration tests can gate the word-at-a-time fast path on bit
    /// identity from outside the crate.
    pub fn encode_reference(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        rle_encode_into_reference(input, &mut out);
        out
    }
}

impl Codec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode_into(
        &self,
        input: &[u8],
        _scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        rle_encode_into(input, out);
        Ok(())
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        if input.len() % 2 != 0 {
            return None;
        }
        let mut out = Vec::with_capacity(input.len());
        for pair in input.chunks_exact(2) {
            let count = pair[0] as usize;
            if count == 0 {
                return None;
            }
            out.extend(std::iter::repeat(pair[1]).take(count));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_runs_and_noise() {
        let rle = Rle;
        for input in [
            vec![],
            vec![5u8; 1000],
            b"abcabcabc".to_vec(),
            (0..=255u8).collect::<Vec<u8>>(),
            vec![0u8; 300], // run longer than the 255 cap
        ] {
            let enc = rle.encode(&input);
            assert_eq!(rle.decode(&enc).expect("decode"), input);
        }
    }

    #[test]
    fn long_runs_compress_hard() {
        let rle = Rle;
        let enc = rle.encode(&vec![9u8; 255 * 4]);
        assert_eq!(enc.len(), 8);
    }

    #[test]
    fn runs_near_the_255_cap_split_exactly() {
        let rle = Rle;
        // Every boundary around the u8 run cap: one pair, a full pair plus a
        // 1-run, two full pairs, two full pairs plus a 1-run.
        for (len, pairs) in [(254, 1), (255, 1), (256, 2), (510, 2), (511, 3)] {
            let input = vec![3u8; len];
            let enc = rle.encode(&input);
            assert_eq!(enc.len(), pairs * 2, "len {len}");
            assert_eq!(rle.decode(&enc).expect("decode"), input, "len {len}");
        }
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let rle = Rle;
        assert!(rle.decode(&[1]).is_none(), "odd length");
        assert!(rle.decode(&[0, 7]).is_none(), "zero count");
    }

    #[test]
    fn word_scan_matches_the_reference_scan_bit_for_bit() {
        let rle = Rle;
        // Mismatches planted at every offset within the first word, runs
        // straddling word boundaries, and runs around the 255 cap.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![2; 7],
            vec![2; 8],
            vec![2; 9],
            vec![9; 300],
            (0..=255u8).collect(),
            b"aaaaaaabaaaaaaab".to_vec(),
        ];
        for mismatch_at in 0..16 {
            let mut v = vec![4u8; 24];
            v[mismatch_at] = 5;
            cases.push(v);
        }
        for input in cases {
            assert_eq!(
                rle.encode(&input),
                rle.encode_reference(&input),
                "divergence on {input:?}"
            );
        }
    }

    #[test]
    fn length_lower_bound_never_exceeds_the_coded_length() {
        let rle = Rle;
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![2; 7],
            vec![2; 300],          // 255-cap split: bound < actual
            (0..=255u8).collect(), // all boundaries
            (0..512).map(|i| ((i / 3) % 7) as u8).collect(),
            b"aaaaaaabaaaaaaab".to_vec(),
        ];
        for input in cases {
            let actual = rle.encode(&input).len();
            let bound = rle_len_lower_bound(&input, usize::MAX);
            assert!(
                bound <= actual,
                "bound {bound} > actual {actual} on {input:?}"
            );
            // Without cap splits the bound is exact; with them it only sags.
            if input.len() < 255 {
                assert_eq!(bound, actual, "inexact on {input:?}");
            }
        }
        // Early exit: the limit comes back verbatim on noisy input.
        let noise: Vec<u8> = (0..=255u8).collect();
        assert_eq!(rle_len_lower_bound(&noise, 100), 100);
        assert_eq!(rle_len_lower_bound(&[], 0), 0);
    }

    #[test]
    fn decode_exact_enforces_its_bound() {
        assert_eq!(rle_decode_exact(&[3, 7], 3), Some(vec![7, 7, 7]));
        assert!(rle_decode_exact(&[3, 7], 2).is_none(), "overshoot");
        assert!(rle_decode_exact(&[3, 7], 4).is_none(), "undershoot");
        assert!(rle_decode_exact(&[0, 7], 0).is_none(), "zero count");
        assert!(rle_decode_exact(&[3], 3).is_none(), "odd length");
        assert_eq!(rle_decode_exact(&[], 0), Some(vec![]));
    }
}
