//! Byte-level run-length coding.
//!
//! Stream format: a sequence of `(count: u8 >= 1, byte)` pairs. Dead simple,
//! worst case 2× expansion on incompressible data — which the tests and the
//! `ablate_compression` bench make visible rather than hide.

use crate::{Codec, CodecError, Scratch};

/// The run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

/// Append the RLE coding of `input` to a cleared `out`. The run scan is
/// batched: one `position` sweep per run instead of a byte-at-a-time loop.
pub(crate) fn rle_encode_into(input: &[u8], out: &mut Vec<u8>) {
    out.clear();
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let cap = (input.len() - i).min(255);
        let run = input[i + 1..i + cap]
            .iter()
            .position(|&x| x != b)
            .map_or(cap, |p| p + 1);
        out.push(run as u8);
        out.push(b);
        i += run;
    }
}

impl Codec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode_into(
        &self,
        input: &[u8],
        _scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        rle_encode_into(input, out);
        Ok(())
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        if input.len() % 2 != 0 {
            return None;
        }
        let mut out = Vec::with_capacity(input.len());
        for pair in input.chunks_exact(2) {
            let count = pair[0] as usize;
            if count == 0 {
                return None;
            }
            out.extend(std::iter::repeat(pair[1]).take(count));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_runs_and_noise() {
        let rle = Rle;
        for input in [
            vec![],
            vec![5u8; 1000],
            b"abcabcabc".to_vec(),
            (0..=255u8).collect::<Vec<u8>>(),
            vec![0u8; 300], // run longer than the 255 cap
        ] {
            let enc = rle.encode(&input);
            assert_eq!(rle.decode(&enc).expect("decode"), input);
        }
    }

    #[test]
    fn long_runs_compress_hard() {
        let rle = Rle;
        let enc = rle.encode(&vec![9u8; 255 * 4]);
        assert_eq!(enc.len(), 8);
    }

    #[test]
    fn runs_near_the_255_cap_split_exactly() {
        let rle = Rle;
        // Every boundary around the u8 run cap: one pair, a full pair plus a
        // 1-run, two full pairs, two full pairs plus a 1-run.
        for (len, pairs) in [(254, 1), (255, 1), (256, 2), (510, 2), (511, 3)] {
            let input = vec![3u8; len];
            let enc = rle.encode(&input);
            assert_eq!(enc.len(), pairs * 2, "len {len}");
            assert_eq!(rle.decode(&enc).expect("decode"), input, "len {len}");
        }
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let rle = Rle;
        assert!(rle.decode(&[1]).is_none(), "odd length");
        assert!(rle.decode(&[0, 7]).is_none(), "zero count");
    }
}
