//! Byte-level run-length coding.
//!
//! Stream format: a sequence of `(count: u8 >= 1, byte)` pairs. Dead simple,
//! worst case 2× expansion on incompressible data — which the tests and the
//! `ablate_compression` bench make visible rather than hide.

use crate::Codec;

/// The run-length codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 4 + 8);
        let mut i = 0;
        while i < input.len() {
            let b = input[i];
            let mut run = 1usize;
            while run < 255 && i + run < input.len() && input[i + run] == b {
                run += 1;
            }
            out.push(run as u8);
            out.push(b);
            i += run;
        }
        out
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        if input.len() % 2 != 0 {
            return None;
        }
        let mut out = Vec::with_capacity(input.len());
        for pair in input.chunks_exact(2) {
            let count = pair[0] as usize;
            if count == 0 {
                return None;
            }
            out.extend(std::iter::repeat(pair[1]).take(count));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_runs_and_noise() {
        let rle = Rle;
        for input in [
            vec![],
            vec![5u8; 1000],
            b"abcabcabc".to_vec(),
            (0..=255u8).collect::<Vec<u8>>(),
            vec![0u8; 300], // run longer than the 255 cap
        ] {
            let enc = rle.encode(&input);
            assert_eq!(rle.decode(&enc).expect("decode"), input);
        }
    }

    #[test]
    fn long_runs_compress_hard() {
        let rle = Rle;
        let enc = rle.encode(&vec![9u8; 255 * 4]);
        assert_eq!(enc.len(), 8);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let rle = Rle;
        assert!(rle.decode(&[1]).is_none(), "odd length");
        assert!(rle.decode(&[0, 7]).is_none(), "zero count");
    }
}
