//! CPU cost of (de)compression, charged to the platform.
//!
//! Compression is the canonical dynamic-vs-static trade: it spends core
//! cycles (dynamic energy) to shrink I/O (mostly static time). The constants
//! put software compression around 400 MB/s/core for encode and 800 MB/s
//! for decode at the Table I node's clock — in the range of fast lossless
//! codecs on 2012-era hardware.

use greenness_platform::Activity;
use serde::{Deserialize, Serialize};

/// Calibrated conversion from bytes (de)coded to compute activities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecCostModel {
    /// Flops-equivalent charged per input byte encoded.
    pub encode_flops_per_byte: f64,
    /// Flops-equivalent charged per output byte decoded.
    pub decode_flops_per_byte: f64,
    /// Cores the codec uses (chunked compression parallelizes; 1 = serial).
    pub cores: u32,
    /// Arithmetic intensity of codec work (branchy, table-driven: low).
    pub intensity: f64,
}

impl Default for CodecCostModel {
    fn default() -> Self {
        CodecCostModel {
            encode_flops_per_byte: 12.0,
            decode_flops_per_byte: 6.0,
            cores: 1,
            intensity: 0.6,
        }
    }
}

impl CodecCostModel {
    /// The compute activity for encoding `bytes` of input.
    pub fn encode_activity(&self, bytes: u64) -> Activity {
        Activity::Compute {
            flops: bytes as f64 * self.encode_flops_per_byte,
            cores: self.cores,
            intensity: self.intensity,
            dram_bytes: bytes * 2,
        }
    }

    /// The compute activity for decoding to `bytes` of output.
    pub fn decode_activity(&self, bytes: u64) -> Activity {
        Activity::Compute {
            flops: bytes as f64 * self.decode_flops_per_byte,
            cores: self.cores,
            intensity: self.intensity,
            dram_bytes: bytes * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{HardwareSpec, Node};

    #[test]
    fn encode_rate_is_in_the_software_codec_range() {
        let cost = CodecCostModel::default();
        let node = Node::new(HardwareSpec::table1());
        let (secs, _) = node.cost_of(cost.encode_activity(100 * 1024 * 1024));
        let rate = 100.0 * 1024.0 * 1024.0 / secs / 1e6; // MB/s
        assert!((100.0..2000.0).contains(&rate), "encode at {rate} MB/s");
    }

    #[test]
    fn decode_is_faster_than_encode() {
        let cost = CodecCostModel::default();
        let node = Node::new(HardwareSpec::table1());
        let (enc, _) = node.cost_of(cost.encode_activity(1_000_000));
        let (dec, _) = node.cost_of(cost.decode_activity(1_000_000));
        assert!(dec < enc);
    }

    #[test]
    fn compression_time_is_far_cheaper_than_the_io_it_saves() {
        // The premise of the compressed-pipeline variant: encoding 2 MiB
        // costs milliseconds; writing 2 MiB in fsync'd chunks costs ~1.4 s.
        let cost = CodecCostModel::default();
        let node = Node::new(HardwareSpec::table1());
        let (secs, _) = node.cost_of(cost.encode_activity(2 * 1024 * 1024));
        assert!(secs < 0.1, "encode took {secs}s");
    }
}
