//! Lossy bounded-error quantization.
//!
//! Maps each `f64` sample onto a `u16` (or `u8`) lattice over the stream's
//! value range (max absolute error ≤ range / 2·(levels−1)), then delta +
//! varint codes the lattice indices. This is the "acceptable information
//! loss" end of the paper's data-reduction spectrum, with the loss explicit
//! and checkable.
//!
//! Stream format: `min: f64 | max: f64 | n: u64 | varint(zigzag(Δindex))…`.

use crate::{Codec, CodecError, Scratch};

/// The 16-bit quantizing codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quant16;

/// The 8-bit quantizing codec: a coarser lattice (255 levels) for wire
/// compression, where neighbouring samples usually collapse onto the same
/// index and the delta stream run-lengths down to ~1 byte per sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct Quant8;

const LEVELS: f64 = u16::MAX as f64;
const LEVELS8: f64 = u8::MAX as f64;

impl Quant16 {
    /// The maximum absolute reconstruction error for data spanning `range`.
    pub fn max_error(range: f64) -> f64 {
        range / (2.0 * LEVELS)
    }
}

impl Quant8 {
    /// The maximum absolute reconstruction error for data spanning `range`.
    pub fn max_error(range: f64) -> f64 {
        range / (2.0 * LEVELS8)
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl Codec for Quant16 {
    fn name(&self) -> &'static str {
        "quant16"
    }

    fn encode_into(
        &self,
        input: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        encode_lattice(LEVELS, input, scratch, out)
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        decode_lattice(LEVELS, input)
    }
}

impl Codec for Quant8 {
    fn name(&self) -> &'static str {
        "quant8"
    }

    fn encode_into(
        &self,
        input: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        encode_lattice(LEVELS8, input, scratch, out)
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        decode_lattice(LEVELS8, input)
    }
}

/// Shared encoder over an `levels`-step lattice (the stream format is the
/// same for every width; decode must use the same `levels` it was encoded
/// with — [`Quant16`] streams are byte-identical to the pre-`Quant8` format).
fn encode_lattice(
    levels: f64,
    input: &[u8],
    _scratch: &mut Scratch,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    {
        if input.len() % 8 != 0 {
            return Err(CodecError::Misaligned { len: input.len() });
        }
        let n = input.len() / 8;
        // Pass 1: value range (and the finiteness check), straight off the
        // byte stream — no intermediate sample Vec.
        let (mut lo, mut hi) = (0.0f64, 0.0f64);
        for (index, c) in input.chunks_exact(8).enumerate() {
            let v = f64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            if !v.is_finite() {
                return Err(CodecError::NonFiniteSample { index });
            }
            if index == 0 {
                lo = v;
                hi = v;
            } else {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let span = hi - lo;
        out.clear();
        out.reserve(n + 24);
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&hi.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        // Pass 2: quantize. `span` can overflow to +inf when lo and hi sit
        // near opposite ends of the f64 range; quantize in halves there so
        // the indices stay finite (the narrow-span path is byte-identical to
        // the pre-overflow-fix format).
        let mut prev = 0i64;
        for c in input.chunks_exact(8) {
            let v = f64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            let idx = if span == 0.0 {
                0
            } else if span.is_finite() {
                ((v - lo) / span * levels).round() as i64
            } else {
                (((v / 2.0 - lo / 2.0) / (hi / 2.0 - lo / 2.0)) * levels).round() as i64
            };
            let delta = idx - prev;
            push_varint(out, ((delta << 1) ^ (delta >> 63)) as u64);
            prev = idx;
        }
        Ok(())
    }
}

/// Shared decoder; see [`encode_lattice`].
fn decode_lattice(levels: f64, input: &[u8]) -> Option<Vec<u8>> {
    {
        if input.len() < 24 {
            return None;
        }
        let lo = f64::from_le_bytes(input[0..8].try_into().ok()?);
        let hi = f64::from_le_bytes(input[8..16].try_into().ok()?);
        let n = u64::from_le_bytes(input[16..24].try_into().ok()?) as usize;
        // Each index delta costs at least one varint byte; a header claiming
        // more samples than remaining bytes is malformed (and must not drive
        // a huge allocation).
        if n > input.len() - 24 {
            return None;
        }
        let span = hi - lo;
        if !(lo.is_finite() && hi.is_finite()) || span < 0.0 {
            return None;
        }
        let mut out = Vec::with_capacity(n * 8);
        let mut pos = 24usize;
        let mut prev = 0i64;
        for _ in 0..n {
            let z = read_varint(input, &mut pos)?;
            let delta = ((z >> 1) as i64) ^ -((z & 1) as i64);
            prev += delta;
            if !(0..=levels as i64).contains(&prev) {
                return None;
            }
            let t = prev as f64 / levels;
            // Mirror the encoder's overflow split: with finite lo/hi but an
            // overflowing span, interpolate without forming hi - lo so the
            // reconstruction stays finite (exact at both endpoints).
            let v = if span.is_finite() {
                lo + t * span
            } else {
                lo * (1.0 - t) + hi * t
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
        if pos != input.len() {
            return None; // trailing garbage
        }
        Some(out)
    }
}

#[cfg(test)]
mod quant8_tests {
    use super::*;
    use crate::Codec;
    use greenness_heatsim::Grid;

    fn samples_of(bytes: &[u8]) -> Vec<f64> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn error_is_bounded_on_the_coarse_lattice() {
        let g = Grid::from_fn(48, 48, |x, y| 100.0 * (x * 5.0).sin() + 30.0 * y);
        let bytes = g.to_bytes();
        let codec = Quant8;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let range = g.max() - g.min();
        let bound = Quant8::max_error(range) * 1.001;
        for (a, b) in samples_of(&bytes).iter().zip(samples_of(&back)) {
            assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn compresses_smooth_fields_harder_than_quant16() {
        let g = Grid::from_fn(64, 64, |x, y| (x + y) * 0.5);
        let bytes = g.to_bytes();
        let q8 = Quant8.encode(&bytes);
        let q16 = Quant16.encode(&bytes);
        assert!(q8.len() <= q16.len(), "{} vs {}", q8.len(), q16.len());
        assert!(
            q8.len() * 6 <= bytes.len(),
            "{} vs {}",
            q8.len(),
            bytes.len()
        );
    }

    #[test]
    fn streams_are_not_cross_decodable_blindly() {
        // A quant16 stream can hold indices past the 8-bit lattice; quant8's
        // decoder rejects them instead of reconstructing garbage.
        let g = Grid::from_fn(16, 16, |x, y| x * 1000.0 + y);
        let enc16 = Quant16.encode(&g.to_bytes());
        assert!(Quant8.decode(&enc16).is_none());
    }

    #[test]
    fn quant16_format_is_unchanged_by_the_refactor() {
        // Golden bytes: a tiny known stream, pinned so the shared
        // `encode_lattice` path provably kept the original format.
        let vals = [0.0f64, 0.5, 1.0];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let enc = Quant16.encode(&bytes);
        let mut want = Vec::new();
        want.extend_from_slice(&0.0f64.to_le_bytes());
        want.extend_from_slice(&1.0f64.to_le_bytes());
        want.extend_from_slice(&3u64.to_le_bytes());
        // indices 0, 32768, 65535 → zigzag deltas of 0, +32768, +32767.
        assert_eq!(&enc[..24], &want[..]);
        let back = samples_of(&Quant16.decode(&enc).expect("decode"));
        assert_eq!(back[0], 0.0);
        assert_eq!(back[2], 1.0);
        assert!((back[1] - 0.5).abs() <= Quant16::max_error(1.0) * 1.001);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    fn samples_of(bytes: &[u8]) -> Vec<f64> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn error_is_bounded() {
        let g = Grid::from_fn(48, 48, |x, y| 100.0 * (x * 5.0).sin() + 30.0 * y);
        let bytes = g.to_bytes();
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let orig = samples_of(&bytes);
        let rec = samples_of(&back);
        let range = g.max() - g.min();
        let bound = Quant16::max_error(range) * 1.001;
        for (a, b) in orig.iter().zip(&rec) {
            assert!((a - b).abs() <= bound, "{a} vs {b} exceeds {bound}");
        }
    }

    #[test]
    fn compresses_smooth_fields_about_4x_or_better() {
        let g = Grid::from_fn(64, 64, |x, y| (x + y) * 0.5);
        let bytes = g.to_bytes();
        let enc = Quant16.encode(&bytes);
        // ~2 bytes per sample on a smooth ramp vs 8 raw.
        assert!(
            enc.len() * 3 <= bytes.len(),
            "{} vs {}",
            enc.len(),
            bytes.len()
        );
    }

    #[test]
    fn constant_and_empty_streams() {
        let codec = Quant16;
        let g = Grid::filled(8, 8, 42.0);
        let bytes = g.to_bytes();
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        assert_eq!(samples_of(&back), samples_of(&bytes));
        assert_eq!(
            codec.decode(&codec.encode(&[])).expect("decode"),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let codec = Quant16;
        assert!(codec.decode(&[0u8; 10]).is_none(), "short header");
        let g = Grid::filled(8, 8, 1.0);
        let mut enc = codec.encode(&g.to_bytes());
        enc.push(0); // trailing garbage
        assert!(codec.decode(&enc).is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_are_rejected() {
        let _ = Quant16.encode(&f64::NAN.to_le_bytes());
    }

    #[test]
    fn non_finite_samples_are_an_error_through_encode_into() {
        let mut bytes = 1.0f64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&f64::INFINITY.to_le_bytes());
        let err = Quant16
            .encode_into(&bytes, &mut Scratch::default(), &mut Vec::new())
            .unwrap_err();
        assert_eq!(err, CodecError::NonFiniteSample { index: 1 });
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn misaligned_input_is_an_error_through_encode_into() {
        let err = Quant16
            .encode_into(&[0u8; 9], &mut Scratch::default(), &mut Vec::new())
            .unwrap_err();
        assert_eq!(err, CodecError::Misaligned { len: 9 });
    }

    #[test]
    fn extreme_range_spans_round_trip_finite() {
        // lo = -MAX, hi = MAX makes hi - lo overflow to +inf; the quantizer
        // used to emit NaN indices here and decode to garbage.
        let vals = [-f64::MAX, 0.0, f64::MAX];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec = samples_of(&back);
        assert!(rec.iter().all(|v| v.is_finite()), "{rec:?}");
        // Range endpoints quantize to the lattice ends and reconstruct
        // exactly; the midpoint lands within half a (huge) lattice step,
        // i.e. within range/2/LEVELS computed in overflow-free halves.
        assert_eq!(rec[0], -f64::MAX);
        assert_eq!(rec[2], f64::MAX);
        let half_step = (f64::MAX / 2.0 - (-f64::MAX) / 2.0) / LEVELS;
        assert!(rec[1].abs() <= half_step * 1.001, "{}", rec[1]);
    }
}
