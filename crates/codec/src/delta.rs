//! Lossless delta + zigzag varint coding for `f64` fields.
//!
//! Smooth simulation fields change little between neighboring cells; coding
//! the bit-pattern difference of consecutive samples as LEB128 varints of
//! the zigzagged delta shrinks them substantially while staying exactly
//! lossless (the round-trip preserves every bit, including NaN payloads).

use crate::{Codec, CodecError, Scratch};

/// The delta-varint codec. Input length must be a multiple of 8 (a stream of
/// little-endian `f64`s, as produced by `Grid::to_bytes`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaVarint;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long varint
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl Codec for DeltaVarint {
    fn name(&self) -> &'static str {
        "delta-varint"
    }

    fn encode_into(
        &self,
        input: &[u8],
        _scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if input.len() % 8 != 0 {
            return Err(CodecError::Misaligned { len: input.len() });
        }
        out.clear();
        let mut prev = 0u64;
        for chunk in input.chunks_exact(8) {
            let bits = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
            let delta = bits.wrapping_sub(prev) as i64;
            push_varint(out, zigzag(delta));
            prev = bits;
        }
        Ok(())
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(input.len() * 2);
        let mut pos = 0usize;
        let mut prev = 0u64;
        while pos < input.len() {
            let delta = unzigzag(read_varint(input, &mut pos)?);
            let bits = prev.wrapping_add(delta as u64);
            out.extend_from_slice(&bits.to_le_bytes());
            prev = bits;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn round_trips_smooth_fields_exactly() {
        let g = Grid::from_fn(64, 64, |x, y| (x * 3.0).sin() * (y * 2.0).cos());
        let bytes = g.to_bytes();
        let codec = DeltaVarint;
        let enc = codec.encode(&bytes);
        assert_eq!(codec.decode(&enc).expect("decode"), &bytes[..]);
    }

    #[test]
    fn constant_fields_compress_massively() {
        let g = Grid::filled(64, 64, 3.25);
        let bytes = g.to_bytes();
        let enc = DeltaVarint.encode(&bytes);
        // One full varint for the first sample, ~1 byte per repeat.
        assert!(
            enc.len() < bytes.len() / 6,
            "{} vs {}",
            enc.len(),
            bytes.len()
        );
    }

    #[test]
    fn special_values_survive() {
        let vals = [
            0.0f64,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = DeltaVarint;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        assert_eq!(back, bytes, "bit-exact round trip incl. NaN payloads");
    }

    #[test]
    fn truncated_streams_are_rejected() {
        let g = Grid::filled(8, 8, 1.0);
        let enc = DeltaVarint.encode(&g.to_bytes());
        // Chop inside a multi-byte varint: find a byte with the continuation
        // bit set and cut right after it.
        if let Some(pos) = enc.iter().position(|b| b & 0x80 != 0) {
            assert!(DeltaVarint.decode(&enc[..=pos]).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "stream of f64s")]
    fn misaligned_input_is_rejected() {
        let _ = DeltaVarint.encode(&[1, 2, 3]);
    }
}
