//! Byte-plane transposition + RLE — the standard lossless trick for floating
//!-point fields.
//!
//! A smooth `f64` field varies mostly in the low mantissa bytes; the sign/
//! exponent/high-mantissa bytes are locally near-constant. Splitting the
//! stream into its eight byte planes groups those near-constant bytes into
//! long runs that RLE then collapses; the noisy low planes pass through
//! nearly raw. Lossless and format-checked.
//!
//! Each plane is stored raw, RLE-coded, or byte-delta+RLE-coded — whichever
//! is smallest — so the worst case is bounded near the input size while
//! smoothly-varying planes (exponents, high mantissa bytes) collapse to
//! near-zero delta runs.
//!
//! Two hot loops caused the BENCH_5 throughput collapse (0.18 GB/s, 14×
//! slower than plain RLE), and both are fixed here without changing a
//! single output byte:
//!
//! * **The plane split.** The original implementation gathered each plane
//!   with `input.chunks_exact(8).map(|c| c[byte_idx])` — eight strided
//!   passes over the whole input. [`transpose_planes`] now reads the input
//!   **once**, transposing each 64-byte group of eight values as an 8×8
//!   byte tile into all eight planes, so every cache line is touched a
//!   single time.
//! * **The per-plane size contest.** The original encoder materialized
//!   both RLE codings of every plane just to measure them, even though
//!   noisy mantissa planes always lose to raw. The fast path now prunes
//!   with [`rle_len_lower_bound`] — a word-at-a-time run count with early
//!   exit — and only materializes codings that can still win; the clamped
//!   lengths feed the same [`choose_flag`] rule the reference uses, so the
//!   chosen flag (and therefore the stream) cannot differ.
//!
//! The original strided, materialize-everything encoder survives as
//! [`TransposeRle::encode_reference`], the bit-identity oracle the fast
//! path is gated on (`tests/bench_trajectory.rs`, codec proptests).
//!
//! Stream format:
//! `n_values: u64 | 8 × (flag: u8 (0=raw, 1=rle, 2=delta+rle) | plane_len: u64 | plane)`.

use crate::rle::{
    rle_decode_exact, rle_encode_into, rle_encode_into_reference, rle_len_lower_bound,
};
use crate::{Codec, CodecError, Scratch};

/// The transpose + RLE codec. Input length must be a multiple of 8.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransposeRle;

/// Split `input` (a stream of `n` little-endian f64 values) into its eight
/// byte planes in one sequential pass. Each group of eight values is
/// transposed as an 8×8 byte tile: the 64 input bytes are read once, and
/// each plane receives its eight bytes as one contiguous write, so both
/// sides of the transpose stay cache-resident. The tail (`n % 8` values)
/// is scattered value-by-value.
pub(crate) fn transpose_planes(input: &[u8], planes: &mut [Vec<u8>; 8]) {
    let n = input.len() / 8;
    for plane in planes.iter_mut() {
        plane.clear();
        plane.resize(n, 0);
    }
    let tiles = n / 8;
    for t in 0..tiles {
        let tile = &input[t * 64..t * 64 + 64];
        let base = t * 8;
        for (j, plane) in planes.iter_mut().enumerate() {
            let row = &mut plane[base..base + 8];
            for (k, slot) in row.iter_mut().enumerate() {
                *slot = tile[k * 8 + j];
            }
        }
    }
    for k in tiles * 8..n {
        let value = &input[k * 8..k * 8 + 8];
        for (j, plane) in planes.iter_mut().enumerate() {
            plane[k] = value[j];
        }
    }
}

/// The byte-delta transform `d[i] = p[i] − p[i−1]` (wrapping, `p[−1] = 0`),
/// written as a windowed subtraction over the already-materialized plane so
/// the inner loop autovectorizes — no serial `prev` carry.
pub(crate) fn delta_into(plane: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.resize(plane.len(), 0);
    let Some(&first) = plane.first() else {
        return;
    };
    out[0] = first;
    for (d, w) in out[1..].iter_mut().zip(plane.windows(2)) {
        *d = w[1].wrapping_sub(w[0]);
    }
}

/// The smallest-wins flag rule, factored out so the fast path (which feeds
/// it pruned candidate lengths) and the reference (which feeds it fully
/// materialized ones) cannot drift: 2 = delta+RLE iff strictly smallest,
/// else 1 = RLE iff strictly smaller than raw, else 0 = raw.
///
/// The rule only compares each coded length against `raw_len` and the
/// *minimum* of the others, so a candidate whose true length is known to be
/// `>= raw_len` may be passed as `raw_len` without changing the outcome —
/// that is what lets the fast path skip materializing provably-losing
/// encodings.
fn choose_flag(raw_len: usize, rle_len: usize, delta_rle_len: usize) -> u8 {
    if delta_rle_len < rle_len.min(raw_len) {
        2
    } else if rle_len < raw_len {
        1
    } else {
        0
    }
}

/// Choose the smallest representation of one plane and append
/// `flag | plane_len | payload` to `out`. Shared verbatim by the fast path
/// and the reference so the choice logic cannot drift between them.
fn push_plane(out: &mut Vec<u8>, plane: &[u8], plane_rle: &[u8], plane_delta_rle: &[u8]) {
    let flag = choose_flag(plane.len(), plane_rle.len(), plane_delta_rle.len());
    let payload: &[u8] = match flag {
        2 => plane_delta_rle,
        1 => plane_rle,
        _ => plane,
    };
    out.push(flag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
}

impl TransposeRle {
    /// Encode through the original implementation: per-plane strided gather
    /// (eight passes over `input`), serial-carry delta, and byte-at-a-time
    /// RLE run scan. Retained as the bit-identity oracle the blocked fast
    /// path in [`Codec::encode_into`] must reproduce exactly — the golden
    /// energy values are pinned to these bytes — and as the baseline the
    /// `greenness bench` trajectory measures the transpose fix against.
    pub fn encode_reference(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        if input.len() % 8 != 0 {
            return Err(CodecError::Misaligned { len: input.len() });
        }
        let n = input.len() / 8;
        let mut out = Vec::with_capacity(input.len() / 2 + 72);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        let (mut plane, mut plane_rle, mut plane_delta, mut plane_delta_rle) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for byte_idx in 0..8 {
            plane.clear();
            plane.extend(input.chunks_exact(8).map(|c| c[byte_idx]));
            rle_encode_into_reference(&plane, &mut plane_rle);
            plane_delta.clear();
            let mut prev = 0u8;
            plane_delta.extend(plane.iter().map(|&b| {
                let d = b.wrapping_sub(prev);
                prev = b;
                d
            }));
            rle_encode_into_reference(&plane_delta, &mut plane_delta_rle);
            push_plane(&mut out, &plane, &plane_rle, &plane_delta_rle);
        }
        Ok(out)
    }
}

impl Codec for TransposeRle {
    fn name(&self) -> &'static str {
        "transpose-rle"
    }

    fn encode_into(
        &self,
        input: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if input.len() % 8 != 0 {
            return Err(CodecError::Misaligned { len: input.len() });
        }
        let n = input.len() / 8;
        let Scratch {
            planes,
            plane_rle,
            plane_delta,
            plane_delta_rle,
        } = scratch;
        transpose_planes(input, planes);
        out.clear();
        out.reserve(input.len() / 2 + 72);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for plane in planes.iter() {
            delta_into(plane, plane_delta);
            // Prune before materializing: a cheap word-at-a-time run count
            // gives a lower bound on each RLE coding's length, and a
            // candidate whose bound already reaches `raw_len` cannot win
            // [`choose_flag`]'s strictly-smaller contest — noisy mantissa
            // planes (the common case on real f64 fields) short-circuit
            // here and are emitted raw without either RLE pass running.
            let raw_len = plane.len();
            let rle_len = if rle_len_lower_bound(plane, raw_len) < raw_len {
                rle_encode_into(plane, plane_rle);
                plane_rle.len()
            } else {
                raw_len
            };
            let delta_rle_len = if rle_len_lower_bound(plane_delta, raw_len) < raw_len {
                rle_encode_into(plane_delta, plane_delta_rle);
                plane_delta_rle.len()
            } else {
                raw_len
            };
            let flag = choose_flag(raw_len, rle_len, delta_rle_len);
            let payload: &[u8] = match flag {
                2 => plane_delta_rle,
                1 => plane_rle,
                _ => plane,
            };
            out.push(flag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        Ok(())
    }

    /// Decode a transpose-RLE stream. The eight `plane_len` fields are
    /// attacker-controlled `u64`s, so the stream is validated in two passes
    /// with checked arithmetic: pass one walks every plane header — flag in
    /// range, payload in bounds, length *plausible* for an `n`-byte plane
    /// (a raw payload must be exactly `n` bytes; an RLE payload of `p`
    /// pairs can only yield `p..=255·p`) — and requires the final offset to
    /// land exactly on the end of input. Only then does pass two allocate
    /// and decode, with the RLE expansion capped at exactly `n` bytes per
    /// plane ([`rle_decode_exact`]). Any malformed, truncated, or
    /// overflowing stream returns `None`; allocation never exceeds what a
    /// *valid* stream of the same length could legitimately decompress to.
    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        let n: usize = u64::from_le_bytes(input.get(0..8)?.try_into().ok()?)
            .try_into()
            .ok()?;
        // Pass 1: validate all eight plane headers before any allocation.
        let mut spans = [(0u8, 0usize, 0usize); 8];
        let mut pos = 8usize;
        for span in spans.iter_mut() {
            let flag = *input.get(pos)?;
            if flag > 2 {
                return None;
            }
            pos = pos.checked_add(1)?;
            let len_end = pos.checked_add(8)?;
            let coded_len: usize = u64::from_le_bytes(input.get(pos..len_end)?.try_into().ok()?)
                .try_into()
                .ok()?;
            pos = len_end;
            let coded_end = pos.checked_add(coded_len)?;
            if coded_end > input.len() {
                return None;
            }
            match flag {
                0 => {
                    if coded_len != n {
                        return None;
                    }
                }
                _ => {
                    if coded_len % 2 != 0 {
                        return None;
                    }
                    let pairs = coded_len / 2;
                    if pairs > n || pairs.checked_mul(255)? < n {
                        return None;
                    }
                }
            }
            *span = (flag, pos, coded_len);
            pos = coded_end;
        }
        if pos != input.len() {
            return None;
        }
        // Pass 2: decode each plane (to exactly n bytes or fail) and
        // scatter it back into value order.
        let mut out = vec![0u8; n.checked_mul(8)?];
        for (byte_idx, &(flag, start, coded_len)) in spans.iter().enumerate() {
            let payload = &input[start..start + coded_len];
            let decoded;
            let plane: &[u8] = match flag {
                0 => payload,
                _ => {
                    let mut p = rle_decode_exact(payload, n)?;
                    if flag == 2 {
                        let mut acc = 0u8;
                        for b in &mut p {
                            acc = acc.wrapping_add(*b);
                            *b = acc;
                        }
                    }
                    decoded = p;
                    &decoded
                }
            };
            for (i, &b) in plane.iter().enumerate() {
                out[i * 8 + byte_idx] = b;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    #[test]
    fn round_trips_exactly() {
        let g = Grid::from_fn(48, 48, |x, y| {
            0.3 * (-((x - 0.5).powi(2) + y * y) * 20.0).exp()
        });
        let bytes = g.to_bytes();
        let codec = TransposeRle;
        assert_eq!(
            codec.decode(&codec.encode(&bytes)).expect("decode"),
            &bytes[..]
        );
    }

    #[test]
    fn blocked_encode_is_bit_identical_to_the_reference() {
        let codec = TransposeRle;
        // Tile-boundary cases: empty, one value, exactly one 8-value tile,
        // a tile plus a tail, and a large smooth field.
        for n_values in [0usize, 1, 7, 8, 9, 64, 65, 1000] {
            let bytes: Vec<u8> = (0..n_values)
                .flat_map(|i| ((i as f64 * 0.37).sin() * 3.0).to_le_bytes())
                .collect();
            assert_eq!(
                codec.encode(&bytes),
                codec.encode_reference(&bytes).expect("aligned"),
                "divergence at {n_values} values"
            );
        }
        assert_eq!(
            codec.encode_reference(&[1, 2, 3]).unwrap_err(),
            CodecError::Misaligned { len: 3 }
        );
    }

    #[test]
    fn beats_plain_bit_delta_on_smooth_fields() {
        use crate::delta::DeltaVarint;
        let g = Grid::from_fn(64, 64, |x, y| {
            0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
        });
        let bytes = g.to_bytes();
        let t = TransposeRle.encode(&bytes).len();
        let d = DeltaVarint.encode(&bytes).len();
        assert!(t < d, "transpose {t} vs delta {d}");
        // Wide-dynamic-range f64 fields compress poorly losslessly (this is
        // exactly why ZFP/SZ-class scientific compressors are lossy);
        // expect a modest but real win.
        assert!(
            (bytes.len() as f64 / t as f64) > 1.08,
            "ratio only {}",
            bytes.len() as f64 / t as f64
        );
    }

    #[test]
    fn special_values_survive() {
        let vals = [0.0f64, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = TransposeRle;
        assert_eq!(codec.decode(&codec.encode(&bytes)).expect("decode"), bytes);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let codec = TransposeRle;
        assert!(codec.decode(&[]).is_none());
        assert!(codec.decode(&[0u8; 7]).is_none());
        let g = Grid::filled(8, 8, 2.0);
        let mut enc = codec.encode(&g.to_bytes());
        enc.push(9); // trailing garbage
        assert!(codec.decode(&enc).is_none());
        let enc2 = codec.encode(&g.to_bytes());
        assert!(codec.decode(&enc2[..enc2.len() - 1]).is_none());
    }

    #[test]
    fn hostile_plane_lengths_are_rejected_without_allocation_bombs() {
        let codec = TransposeRle;
        let enc = codec.encode(&Grid::filled(8, 8, 2.0).to_bytes());

        // Claimed value count far beyond anything the payload could back.
        let mut huge_n = enc.clone();
        huge_n[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(codec.decode(&huge_n).is_none());

        // A plane_len of u64::MAX must fail the checked bounds math, not
        // wrap or slice out of range. Plane 0's header starts at offset 8:
        // flag byte, then the 8-byte length.
        let mut huge_plane = enc.clone();
        huge_plane[9..17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(codec.decode(&huge_plane).is_none());

        // An RLE plane whose pair count cannot reach n bytes (too few) or
        // stay within it (too many) is rejected before decoding.
        let mut stream = 64u64.to_le_bytes().to_vec(); // n = 64
        for _ in 0..8 {
            stream.push(1); // flag: rle
            stream.extend_from_slice(&2u64.to_le_bytes()); // one pair
            stream.extend_from_slice(&[10, 7]); // 10 bytes != 64
        }
        assert!(codec.decode(&stream).is_none());
    }

    #[test]
    fn empty_stream() {
        let codec = TransposeRle;
        assert_eq!(
            codec.decode(&codec.encode(&[])).expect("decode"),
            Vec::<u8>::new()
        );
    }
}
