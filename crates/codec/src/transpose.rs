//! Byte-plane transposition + RLE — the standard lossless trick for floating
//!-point fields.
//!
//! A smooth `f64` field varies mostly in the low mantissa bytes; the sign/
//! exponent/high-mantissa bytes are locally near-constant. Splitting the
//! stream into its eight byte planes groups those near-constant bytes into
//! long runs that RLE then collapses; the noisy low planes pass through
//! nearly raw. Lossless and format-checked.
//!
//! Each plane is stored raw, RLE-coded, or byte-delta+RLE-coded — whichever
//! is smallest — so the worst case is bounded near the input size while
//! smoothly-varying planes (exponents, high mantissa bytes) collapse to
//! near-zero delta runs.
//!
//! Stream format:
//! `n_values: u64 | 8 × (flag: u8 (0=raw, 1=rle, 2=delta+rle) | plane_len: u64 | plane)`.

use crate::rle::{rle_encode_into, Rle};
use crate::{Codec, CodecError, Scratch};

/// The transpose + RLE codec. Input length must be a multiple of 8.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransposeRle;

impl Codec for TransposeRle {
    fn name(&self) -> &'static str {
        "transpose-rle"
    }

    fn encode_into(
        &self,
        input: &[u8],
        scratch: &mut Scratch,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if input.len() % 8 != 0 {
            return Err(CodecError::Misaligned { len: input.len() });
        }
        let n = input.len() / 8;
        let Scratch {
            plane,
            plane_rle,
            plane_delta,
            plane_delta_rle,
        } = scratch;
        out.clear();
        out.reserve(input.len() / 2 + 72);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for byte_idx in 0..8 {
            plane.clear();
            plane.extend(input.chunks_exact(8).map(|c| c[byte_idx]));
            rle_encode_into(plane, plane_rle);
            plane_delta.clear();
            let mut prev = 0u8;
            plane_delta.extend(plane.iter().map(|&b| {
                let d = b.wrapping_sub(prev);
                prev = b;
                d
            }));
            rle_encode_into(plane_delta, plane_delta_rle);
            let (flag, payload): (u8, &[u8]) =
                if plane_delta_rle.len() < plane_rle.len().min(plane.len()) {
                    (2, plane_delta_rle)
                } else if plane_rle.len() < plane.len() {
                    (1, plane_rle)
                } else {
                    (0, plane)
                };
            out.push(flag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        Ok(())
    }

    fn decode(&self, input: &[u8]) -> Option<Vec<u8>> {
        if input.len() < 8 {
            return None;
        }
        let n = u64::from_le_bytes(input[0..8].try_into().ok()?) as usize;
        // A plane of n bytes needs at least n/255 RLE pairs (2 bytes each);
        // reject headers that could not possibly be backed by the payload
        // before allocating the output.
        if n > input.len().saturating_mul(128) {
            return None;
        }
        let rle = Rle;
        let mut out = vec![0u8; n.checked_mul(8)?];
        let mut pos = 8usize;
        for byte_idx in 0..8 {
            let flag = *input.get(pos)?;
            pos += 1;
            let len_end = pos.checked_add(8)?;
            let coded_len = u64::from_le_bytes(input.get(pos..len_end)?.try_into().ok()?) as usize;
            pos = len_end;
            let coded_end = pos.checked_add(coded_len)?;
            let plane = match flag {
                0 => input.get(pos..coded_end)?.to_vec(),
                1 => rle.decode(input.get(pos..coded_end)?)?,
                2 => {
                    let mut p = rle.decode(input.get(pos..coded_end)?)?;
                    let mut acc = 0u8;
                    for b in &mut p {
                        acc = acc.wrapping_add(*b);
                        *b = acc;
                    }
                    p
                }
                _ => return None,
            };
            if plane.len() != n {
                return None;
            }
            pos = coded_end;
            for (i, &b) in plane.iter().enumerate() {
                out[i * 8 + byte_idx] = b;
            }
        }
        if pos != input.len() {
            return None;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::Grid;

    #[test]
    fn round_trips_exactly() {
        let g = Grid::from_fn(48, 48, |x, y| {
            0.3 * (-((x - 0.5).powi(2) + y * y) * 20.0).exp()
        });
        let bytes = g.to_bytes();
        let codec = TransposeRle;
        assert_eq!(
            codec.decode(&codec.encode(&bytes)).expect("decode"),
            &bytes[..]
        );
    }

    #[test]
    fn beats_plain_bit_delta_on_smooth_fields() {
        use crate::delta::DeltaVarint;
        let g = Grid::from_fn(64, 64, |x, y| {
            0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
        });
        let bytes = g.to_bytes();
        let t = TransposeRle.encode(&bytes).len();
        let d = DeltaVarint.encode(&bytes).len();
        assert!(t < d, "transpose {t} vs delta {d}");
        // Wide-dynamic-range f64 fields compress poorly losslessly (this is
        // exactly why ZFP/SZ-class scientific compressors are lossy);
        // expect a modest but real win.
        assert!(
            (bytes.len() as f64 / t as f64) > 1.08,
            "ratio only {}",
            bytes.len() as f64 / t as f64
        );
    }

    #[test]
    fn special_values_survive() {
        let vals = [0.0f64, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = TransposeRle;
        assert_eq!(codec.decode(&codec.encode(&bytes)).expect("decode"), bytes);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let codec = TransposeRle;
        assert!(codec.decode(&[]).is_none());
        assert!(codec.decode(&[0u8; 7]).is_none());
        let g = Grid::filled(8, 8, 2.0);
        let mut enc = codec.encode(&g.to_bytes());
        enc.push(9); // trailing garbage
        assert!(codec.decode(&enc).is_none());
        let enc2 = codec.encode(&g.to_bytes());
        assert!(codec.decode(&enc2[..enc2.len() - 1]).is_none());
    }

    #[test]
    fn empty_stream() {
        let codec = TransposeRle;
        assert_eq!(
            codec.decode(&codec.encode(&[])).expect("decode"),
            Vec::<u8>::new()
        );
    }
}
