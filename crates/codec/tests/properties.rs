//! Property-based tests for the codecs.

use greenness_codec::delta::DeltaVarint;
use greenness_codec::quant::Quant16;
use greenness_codec::rle::Rle;
use greenness_codec::transpose::TransposeRle;
use greenness_codec::{Codec, CodecError, ScratchCodec};
use proptest::prelude::*;

proptest! {
    /// RLE round-trips arbitrary byte streams.
    #[test]
    fn rle_round_trip(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let rle = Rle;
        let enc = rle.encode(&input);
        prop_assert_eq!(rle.decode(&enc).expect("decode"), input);
    }

    /// Delta-varint round-trips arbitrary f64 streams bit-exactly.
    #[test]
    fn delta_round_trip(vals in prop::collection::vec(prop::num::f64::ANY, 0..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = DeltaVarint;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        prop_assert_eq!(back, bytes);
    }

    /// Quantization keeps every sample within the advertised error bound.
    #[test]
    fn quant_error_bound(vals in prop::collection::vec(-1.0e6..1.0e6f64, 1..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = Quant16::max_error(hi - lo) * (1.0 + 1e-9) + 1e-12 * hi.abs().max(lo.abs());
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// Quantizing twice is idempotent on the value lattice: decode(encode(x))
    /// is a fixed point (up to the lattice snap of the first pass).
    #[test]
    fn quant_is_idempotent(vals in prop::collection::vec(-100.0..100.0f64, 1..128)) {
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let once = codec.decode(&codec.encode(&bytes)).expect("first pass");
        let twice = codec.decode(&codec.encode(&once)).expect("second pass");
        let a: Vec<f64> =
            once.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        let b: Vec<f64> =
            twice.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// Decoders never panic on arbitrary garbage — they return None or a
    /// (meaningless but safe) result.
    #[test]
    fn decoders_are_total(garbage in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = Rle.decode(&garbage);
        let _ = DeltaVarint.decode(&garbage);
        let _ = Quant16.decode(&garbage);
    }

    /// Composing delta under RLE round-trips arbitrary f64 streams
    /// bit-exactly: decode must invert the composition in reverse order.
    #[test]
    fn delta_then_rle_round_trip(vals in prop::collection::vec(prop::num::f64::ANY, 0..256)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let staged = Rle.encode(&DeltaVarint.encode(&bytes));
        let back = DeltaVarint
            .decode(&Rle.decode(&staged).expect("rle decode"))
            .expect("delta decode");
        prop_assert_eq!(back, bytes);
    }

    /// On constant streams the delta+RLE composition must also *compress*:
    /// deltas collapse to zero runs, which RLE then folds away.
    #[test]
    fn delta_then_rle_compresses_constant_streams(
        v in -1.0e12..1.0e12f64,
        n in 64usize..512,
    ) {
        let mut bytes = Vec::with_capacity(n * 8);
        for _ in 0..n {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let staged = Rle.encode(&DeltaVarint.encode(&bytes));
        prop_assert!(
            staged.len() * 4 < bytes.len(),
            "constant stream grew: {} -> {}",
            bytes.len(),
            staged.len()
        );
        let back = DeltaVarint
            .decode(&Rle.decode(&staged).expect("rle decode"))
            .expect("delta decode");
        prop_assert_eq!(back, bytes);
    }

    /// Quantization on adversarial value patterns — all-equal, strictly
    /// alternating extremes, and huge-but-finite magnitudes — still honors
    /// the advertised bound and preserves sample count.
    #[test]
    fn quant_error_bound_adversarial(
        lo in -1.0e15..1.0e15f64,
        span in 0.0..1.0e15f64,
        n in 1usize..256,
        pattern in 0u8..3,
    ) {
        let hi = lo + span;
        let vals: Vec<f64> = (0..n)
            .map(|i| match pattern {
                0 => lo,                                   // all-equal
                1 => if i % 2 == 0 { lo } else { hi },     // alternating extremes
                _ => lo + span * (i as f64 / n.max(1) as f64), // ramp to the extreme
            })
            .collect();
        let mut bytes = Vec::with_capacity(n * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let bound = Quant16::max_error(span) * (1.0 + 1e-9)
            + 1e-9 * hi.abs().max(lo.abs()).max(1.0);
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// Zero-range (all samples identical) is the degenerate quantization
    /// case: reconstruction must be exact, not NaN or divide-by-zero junk.
    #[test]
    fn quant_zero_range_is_exact(v in -1.0e12..1.0e12f64, n in 1usize..128) {
        let mut bytes = Vec::with_capacity(n * 8);
        for _ in 0..n {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        for c in back.chunks_exact(8) {
            let r = f64::from_le_bytes(c.try_into().unwrap());
            prop_assert!(r.is_finite());
            prop_assert!((r - v).abs() <= 1e-9 * v.abs().max(1.0), "{r} vs {v}");
        }
    }

    /// RLE splits runs at the 255 cap with no drift around the boundary:
    /// a single-byte run of any length round-trips and uses exactly
    /// ceil(len / 255) pairs.
    #[test]
    fn rle_run_cap_boundaries(b in any::<u8>(), extra in 0usize..4) {
        for base in [253usize, 254, 255, 256, 509, 510, 511, 512] {
            let len = base + extra;
            let input = vec![b; len];
            let enc = Rle.encode(&input);
            prop_assert_eq!(enc.len(), len.div_ceil(255) * 2, "len {}", len);
            prop_assert_eq!(Rle.decode(&enc).expect("decode"), input);
        }
    }

    /// Quantization of arbitrary finite samples — including extreme
    /// magnitudes whose range overflows f64 — always reconstructs finite
    /// values within half a lattice step (computed in overflow-free halves).
    #[test]
    fn quant_survives_extreme_ranges(
        bits in prop::collection::vec(any::<u64>(), 1..64)
    ) {
        // Arbitrary bit patterns, with NaN/inf snapped to ±MAX: full-range
        // finite samples, so lo = -MAX / hi = +MAX span overflows routinely.
        let vals: Vec<f64> = bits
            .iter()
            .map(|&b| {
                let v = f64::from_bits(b);
                if v.is_finite() { v } else { f64::MAX.copysign(v) }
            })
            .collect();
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let half_step = (hi / 2.0 - lo / 2.0) / 65_535.0;
        let bound = half_step * 1.001 + 1e-9 * hi.abs().max(lo.abs()).max(1.0);
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!(b.is_finite(), "{} decoded non-finite ({})", a, b);
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// A reused ScratchCodec produces byte-identical output to a fresh
    /// allocating encode, for every codec, across a sequence of
    /// different-shaped inputs.
    #[test]
    fn scratch_codec_matches_one_shot_encode(
        streams in prop::collection::vec(
            prop::collection::vec(prop::num::f64::ANY, 0..128),
            1..6,
        )
    ) {
        let codecs: [Box<dyn Codec>; 3] =
            [Box::new(Rle), Box::new(DeltaVarint), Box::new(TransposeRle)];
        for codec in codecs {
            let one_shot: Vec<Vec<u8>> = streams
                .iter()
                .map(|vals| {
                    let mut bytes = Vec::with_capacity(vals.len() * 8);
                    for v in vals {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                    codec.encode(&bytes)
                })
                .collect();
            let mut sc = ScratchCodec::new(codec);
            for (vals, expect) in streams.iter().zip(&one_shot) {
                let mut bytes = Vec::with_capacity(vals.len() * 8);
                for v in vals {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                let name = sc.name();
                let got = sc.try_encode(&bytes).expect("encode");
                prop_assert_eq!(got, &expect[..], "{} drifted under reuse", name);
            }
        }
    }

    /// The blocked single-pass transpose is bit-identical to the retained
    /// strided-gather reference at every value count — including counts
    /// that are not a multiple of the 8-value tile, where the tail path
    /// runs — and the stream round-trips.
    #[test]
    fn transpose_blocked_matches_reference_at_any_length(
        vals in prop::collection::vec(prop::num::f64::ANY, 0..300)
    ) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = TransposeRle;
        let fast = codec.encode(&bytes);
        prop_assert_eq!(&fast, &codec.encode_reference(&bytes).expect("aligned"));
        prop_assert_eq!(codec.decode(&fast).expect("decode"), bytes);
    }

    /// The word-at-a-time RLE run scan is bit-identical to the retained
    /// byte-at-a-time reference on arbitrary streams.
    #[test]
    fn rle_word_scan_matches_reference(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let rle = Rle;
        prop_assert_eq!(rle.encode(&input), rle.encode_reference(&input));
    }

    /// Corrupting any single byte of a valid transpose-RLE stream — the
    /// length header, a plane flag, a plane_len field, or payload — never
    /// panics or over-reads: decode returns None or some equally-sized safe
    /// result.
    #[test]
    fn transpose_decode_survives_corruption(
        vals in prop::collection::vec(prop::num::f64::ANY, 1..64),
        pos_seed in any::<usize>(),
        xor in 1u8..255,
    ) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = TransposeRle;
        let mut enc = codec.encode(&bytes);
        let pos = pos_seed % enc.len();
        enc[pos] ^= xor;
        if let Some(out) = codec.decode(&enc) {
            // A stream that still parses must still describe 8 full planes.
            prop_assert_eq!(out.len() % 8, 0);
        }
    }

    /// Truncating a valid transpose-RLE stream at any point is detected.
    #[test]
    fn transpose_decode_rejects_truncation(
        vals in prop::collection::vec(prop::num::f64::ANY, 1..64),
        cut_seed in any::<usize>(),
    ) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = TransposeRle;
        let enc = codec.encode(&bytes);
        let cut = cut_seed % enc.len(); // strictly shorter than the stream
        prop_assert!(codec.decode(&enc[..cut]).is_none());
    }

    /// Arbitrary garbage through the transpose decoder is rejected or safe,
    /// never a panic — the plane_len fields are attacker-controlled u64s.
    #[test]
    fn transpose_decoder_is_total(garbage in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = TransposeRle.decode(&garbage);
    }

    /// Misaligned input is an error value through encode_into for every
    /// f64-stream codec, never a panic.
    #[test]
    fn misaligned_inputs_are_errors(raw_len in 1usize..64) {
        // Snap multiples of 8 to the next (misaligned) length.
        let len = if raw_len % 8 == 0 { raw_len + 1 } else { raw_len };
        let input = vec![0u8; len];
        for codec in [
            Box::new(DeltaVarint) as Box<dyn Codec>,
            Box::new(Quant16),
            Box::new(TransposeRle),
        ] {
            let mut sc = ScratchCodec::new(codec);
            prop_assert_eq!(
                sc.try_encode(&input).unwrap_err(),
                CodecError::Misaligned { len }
            );
        }
    }
}
