//! Property-based tests for the codecs.

use greenness_codec::delta::DeltaVarint;
use greenness_codec::quant::Quant16;
use greenness_codec::rle::Rle;
use greenness_codec::Codec;
use proptest::prelude::*;

proptest! {
    /// RLE round-trips arbitrary byte streams.
    #[test]
    fn rle_round_trip(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let rle = Rle;
        let enc = rle.encode(&input);
        prop_assert_eq!(rle.decode(&enc).expect("decode"), input);
    }

    /// Delta-varint round-trips arbitrary f64 streams bit-exactly.
    #[test]
    fn delta_round_trip(vals in prop::collection::vec(prop::num::f64::ANY, 0..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = DeltaVarint;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        prop_assert_eq!(back, bytes);
    }

    /// Quantization keeps every sample within the advertised error bound.
    #[test]
    fn quant_error_bound(vals in prop::collection::vec(-1.0e6..1.0e6f64, 1..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = Quant16::max_error(hi - lo) * (1.0 + 1e-9) + 1e-12 * hi.abs().max(lo.abs());
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// Quantizing twice is idempotent on the value lattice: decode(encode(x))
    /// is a fixed point (up to the lattice snap of the first pass).
    #[test]
    fn quant_is_idempotent(vals in prop::collection::vec(-100.0..100.0f64, 1..128)) {
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let once = codec.decode(&codec.encode(&bytes)).expect("first pass");
        let twice = codec.decode(&codec.encode(&once)).expect("second pass");
        let a: Vec<f64> =
            once.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        let b: Vec<f64> =
            twice.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// Decoders never panic on arbitrary garbage — they return None or a
    /// (meaningless but safe) result.
    #[test]
    fn decoders_are_total(garbage in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = Rle.decode(&garbage);
        let _ = DeltaVarint.decode(&garbage);
        let _ = Quant16.decode(&garbage);
    }
}
