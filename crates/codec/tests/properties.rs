//! Property-based tests for the codecs.

use greenness_codec::delta::DeltaVarint;
use greenness_codec::quant::Quant16;
use greenness_codec::rle::Rle;
use greenness_codec::Codec;
use proptest::prelude::*;

proptest! {
    /// RLE round-trips arbitrary byte streams.
    #[test]
    fn rle_round_trip(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let rle = Rle;
        let enc = rle.encode(&input);
        prop_assert_eq!(rle.decode(&enc).expect("decode"), input);
    }

    /// Delta-varint round-trips arbitrary f64 streams bit-exactly.
    #[test]
    fn delta_round_trip(vals in prop::collection::vec(prop::num::f64::ANY, 0..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = DeltaVarint;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        prop_assert_eq!(back, bytes);
    }

    /// Quantization keeps every sample within the advertised error bound.
    #[test]
    fn quant_error_bound(vals in prop::collection::vec(-1.0e6..1.0e6f64, 1..512)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bound = Quant16::max_error(hi - lo) * (1.0 + 1e-9) + 1e-12 * hi.abs().max(lo.abs());
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// Quantizing twice is idempotent on the value lattice: decode(encode(x))
    /// is a fixed point (up to the lattice snap of the first pass).
    #[test]
    fn quant_is_idempotent(vals in prop::collection::vec(-100.0..100.0f64, 1..128)) {
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let once = codec.decode(&codec.encode(&bytes)).expect("first pass");
        let twice = codec.decode(&codec.encode(&once)).expect("second pass");
        let a: Vec<f64> =
            once.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        let b: Vec<f64> =
            twice.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    /// Decoders never panic on arbitrary garbage — they return None or a
    /// (meaningless but safe) result.
    #[test]
    fn decoders_are_total(garbage in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = Rle.decode(&garbage);
        let _ = DeltaVarint.decode(&garbage);
        let _ = Quant16.decode(&garbage);
    }

    /// Composing delta under RLE round-trips arbitrary f64 streams
    /// bit-exactly: decode must invert the composition in reverse order.
    #[test]
    fn delta_then_rle_round_trip(vals in prop::collection::vec(prop::num::f64::ANY, 0..256)) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let staged = Rle.encode(&DeltaVarint.encode(&bytes));
        let back = DeltaVarint
            .decode(&Rle.decode(&staged).expect("rle decode"))
            .expect("delta decode");
        prop_assert_eq!(back, bytes);
    }

    /// On constant streams the delta+RLE composition must also *compress*:
    /// deltas collapse to zero runs, which RLE then folds away.
    #[test]
    fn delta_then_rle_compresses_constant_streams(
        v in -1.0e12..1.0e12f64,
        n in 64usize..512,
    ) {
        let mut bytes = Vec::with_capacity(n * 8);
        for _ in 0..n {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let staged = Rle.encode(&DeltaVarint.encode(&bytes));
        prop_assert!(
            staged.len() * 4 < bytes.len(),
            "constant stream grew: {} -> {}",
            bytes.len(),
            staged.len()
        );
        let back = DeltaVarint
            .decode(&Rle.decode(&staged).expect("rle decode"))
            .expect("delta decode");
        prop_assert_eq!(back, bytes);
    }

    /// Quantization on adversarial value patterns — all-equal, strictly
    /// alternating extremes, and huge-but-finite magnitudes — still honors
    /// the advertised bound and preserves sample count.
    #[test]
    fn quant_error_bound_adversarial(
        lo in -1.0e15..1.0e15f64,
        span in 0.0..1.0e15f64,
        n in 1usize..256,
        pattern in 0u8..3,
    ) {
        let hi = lo + span;
        let vals: Vec<f64> = (0..n)
            .map(|i| match pattern {
                0 => lo,                                   // all-equal
                1 => if i % 2 == 0 { lo } else { hi },     // alternating extremes
                _ => lo + span * (i as f64 / n.max(1) as f64), // ramp to the extreme
            })
            .collect();
        let mut bytes = Vec::with_capacity(n * 8);
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        let rec: Vec<f64> =
            back.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        prop_assert_eq!(rec.len(), vals.len());
        let bound = Quant16::max_error(span) * (1.0 + 1e-9)
            + 1e-9 * hi.abs().max(lo.abs()).max(1.0);
        for (a, b) in vals.iter().zip(&rec) {
            prop_assert!((a - b).abs() <= bound, "{} vs {} (bound {})", a, b, bound);
        }
    }

    /// Zero-range (all samples identical) is the degenerate quantization
    /// case: reconstruction must be exact, not NaN or divide-by-zero junk.
    #[test]
    fn quant_zero_range_is_exact(v in -1.0e12..1.0e12f64, n in 1usize..128) {
        let mut bytes = Vec::with_capacity(n * 8);
        for _ in 0..n {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let codec = Quant16;
        let back = codec.decode(&codec.encode(&bytes)).expect("decode");
        for c in back.chunks_exact(8) {
            let r = f64::from_le_bytes(c.try_into().unwrap());
            prop_assert!(r.is_finite());
            prop_assert!((r - v).abs() <= 1e-9 * v.abs().max(1.0), "{r} vs {v}");
        }
    }
}
