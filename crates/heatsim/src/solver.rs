//! Explicit (FTCS) finite-difference solver for the 2-D heat equation.
//!
//! `∂u/∂t = α ∇²u + q`, advanced with forward-time centered-space stepping on
//! the unit square. The interior update is parallelized over rows with rayon
//! (each output row depends only on the previous time level, so rows are
//! independent). Stability requires the CFL condition
//! `α·Δt·(1/Δx² + 1/Δy²) ≤ ½`, checked at construction.
//!
//! The production [`HeatSolver::step`] splits every row into an interior
//! fast path (pure indexed 5-point update, no branches, no bounds casts)
//! plus explicit boundary-column handling; the straight-line
//! [`HeatSolver::step_reference`] implementation is kept as the bit-for-bit
//! oracle and as the pre-optimization baseline the `greenness bench`
//! trajectory measures speedups against.

use std::fmt;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::grid::Grid;

/// Boundary condition applied on all four edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Boundary {
    /// Fixed edge temperature (heat flows through the walls).
    Dirichlet(f64),
    /// Insulated walls (zero flux; total heat is conserved).
    Neumann,
}

/// A continuous point heat source: adds `rate` to one cell per unit time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSource {
    /// Cell x-index.
    pub i: usize,
    /// Cell y-index.
    pub j: usize,
    /// Heating rate, temperature units per second.
    pub rate: f64,
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Thermal diffusivity α.
    pub alpha: f64,
    /// Timestep Δt, seconds of *physical* (not virtual-platform) time.
    pub dt: f64,
    /// Boundary condition on every edge.
    pub boundary: Boundary,
    /// Point sources active throughout the run.
    pub sources: Vec<PointSource>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            alpha: 1.0e-4,
            dt: 0.1,
            boundary: Boundary::Dirichlet(0.0),
            sources: Vec::new(),
        }
    }
}

/// Why a solver could not be constructed. These conditions are reachable
/// from CLI flags, so they are reported as values (mapped to the binaries'
/// uniform exit-2 usage path) rather than panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// `alpha` or `dt` is NaN or infinite.
    NonFiniteParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `alpha` or `dt` is negative.
    NegativeParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The CFL stability condition `α·Δt·(1/Δx² + 1/Δy²) ≤ ½` is violated.
    Unstable {
        /// The computed CFL number.
        cfl: f64,
    },
    /// A point source lies outside the grid.
    SourceOutsideGrid {
        /// Source x-index.
        i: usize,
        /// Source y-index.
        j: usize,
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// A point source has a NaN or infinite heating rate.
    NonFiniteSourceRate {
        /// Source x-index.
        i: usize,
        /// Source y-index.
        j: usize,
        /// The offending rate.
        rate: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NonFiniteParameter { name, value } => {
                write!(f, "{name} must be finite, got {value}")
            }
            SolverError::NegativeParameter { name, value } => {
                write!(f, "{name} must be non-negative, got {value}")
            }
            SolverError::Unstable { cfl } => {
                write!(
                    f,
                    "FTCS unstable: alpha*dt*(1/dx^2+1/dy^2) = {cfl:.3} > 0.5"
                )
            }
            SolverError::SourceOutsideGrid { i, j, nx, ny } => {
                write!(f, "source ({i}, {j}) outside {nx}x{ny} grid")
            }
            SolverError::NonFiniteSourceRate { i, j, rate } => {
                write!(f, "source ({i}, {j}) rate must be finite, got {rate}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl SolverConfig {
    /// Check this configuration against an `nx × ny` grid without building
    /// a solver — the validation [`HeatSolver::new`] performs, exposed so
    /// CLI front ends can reject bad flags before any work starts.
    pub fn validate(&self, nx: usize, ny: usize) -> Result<(), SolverError> {
        for (name, value) in [("alpha", self.alpha), ("dt", self.dt)] {
            if !value.is_finite() {
                return Err(SolverError::NonFiniteParameter { name, value });
            }
            if value < 0.0 {
                return Err(SolverError::NegativeParameter { name, value });
            }
        }
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let cfl = self.alpha * self.dt * (1.0 / (dx * dx) + 1.0 / (dy * dy));
        // alpha and dt are already known finite, so cfl cannot be NaN here
        // and a plain > comparison is exhaustive.
        if cfl > 0.5 + 1e-12 {
            return Err(SolverError::Unstable { cfl });
        }
        for s in &self.sources {
            if s.i >= nx || s.j >= ny {
                return Err(SolverError::SourceOutsideGrid {
                    i: s.i,
                    j: s.j,
                    nx,
                    ny,
                });
            }
            if !s.rate.is_finite() {
                return Err(SolverError::NonFiniteSourceRate {
                    i: s.i,
                    j: s.j,
                    rate: s.rate,
                });
            }
        }
        Ok(())
    }
}

/// The heat-equation integrator. Owns the current and scratch fields.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    config: SolverConfig,
    grid: Grid,
    scratch: Grid,
    steps_taken: u64,
    cell_updates: u64,
}

impl HeatSolver {
    /// Build a solver over `initial`. Fails if `alpha`/`dt` are non-finite
    /// or negative, the CFL stability condition is violated, or a source
    /// lies outside the grid.
    pub fn new(initial: Grid, config: SolverConfig) -> Result<HeatSolver, SolverError> {
        config.validate(initial.nx(), initial.ny())?;
        let scratch = initial.clone();
        Ok(HeatSolver {
            config,
            grid: initial,
            scratch,
            steps_taken: 0,
            cell_updates: 0,
        })
    }

    /// The current field.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Interior cell updates performed so far (the work measure the cost
    /// model charges).
    pub fn cell_updates(&self) -> u64 {
        self.cell_updates
    }

    /// The stencil coefficients `rx = α·Δt/Δx²`, `ry = α·Δt/Δy²`.
    fn coefficients(&self) -> (f64, f64) {
        let dx = 1.0 / self.grid.nx() as f64;
        let dy = 1.0 / self.grid.ny() as f64;
        let rx = self.config.alpha * self.config.dt / (dx * dx);
        let ry = self.config.alpha * self.config.dt / (dy * dy);
        (rx, ry)
    }

    /// Apply point sources to the freshly computed level, commit it, and
    /// advance the counters. Shared by both step implementations.
    fn commit_step(&mut self) {
        for s in &self.config.sources {
            let v = self.scratch.at(s.i, s.j) + s.rate * self.config.dt;
            self.scratch.set(s.i, s.j, v);
        }
        std::mem::swap(&mut self.grid, &mut self.scratch);
        self.steps_taken += 1;
        self.cell_updates += (self.grid.nx() * self.grid.ny()) as u64;
    }

    /// Advance one timestep on the fast path: per-row slices hoisted once,
    /// interior columns updated by pure indexed loads, wall columns and
    /// wall rows handled explicitly through the boundary's ghost formula.
    /// Bit-identical to [`Self::step_reference`] (pinned by unit tests,
    /// proptests, and the golden/image-equivalence suites).
    pub fn step(&mut self) {
        let (rx, ry) = self.coefficients();
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let prev = self.grid.as_slice();
        let out = self.scratch.as_mut_slice();
        // Both boundaries reduce an out-of-grid orthogonal neighbor to a
        // function of the wall cell's own value `u`: the clamped mirror
        // index of such a neighbor is the wall cell itself, so Dirichlet's
        // second-order ghost is `2v − u` and Neumann's reflection is `u`.
        match self.config.boundary {
            Boundary::Dirichlet(v) => step_field(prev, out, nx, ny, rx, ry, move |u| 2.0 * v - u),
            Boundary::Neumann => step_field(prev, out, nx, ny, rx, ry, |u| u),
        }
        self.commit_step();
    }

    /// Advance one timestep through the original per-cell closure (match on
    /// `Boundary` + `isize` clamping for every sample). Retained as the
    /// reference oracle the fast path must match bit-for-bit, and as the
    /// baseline workload of the `greenness bench` stencil speedup metric.
    pub fn step_reference(&mut self) {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let (rx, ry) = self.coefficients();

        // Ghost-cell view of the previous level under the active boundary.
        let prev = self.grid.as_slice();
        let boundary = self.config.boundary;
        let sample = move |i: isize, j: isize| -> f64 {
            match boundary {
                Boundary::Dirichlet(v) => {
                    if i < 0 || j < 0 || i >= nx as isize || j >= ny as isize {
                        // Second-order ghost for a cell-centered mesh: the
                        // wall value sits on the face between the ghost and
                        // the nearest interior cell.
                        let ii = i.clamp(0, nx as isize - 1) as usize;
                        let jj = j.clamp(0, ny as isize - 1) as usize;
                        2.0 * v - prev[jj * nx + ii]
                    } else {
                        prev[j as usize * nx + i as usize]
                    }
                }
                Boundary::Neumann => {
                    // Reflect: zero-flux mirror at the walls.
                    let i = i.clamp(0, nx as isize - 1) as usize;
                    let j = j.clamp(0, ny as isize - 1) as usize;
                    prev[j * nx + i]
                }
            }
        };

        self.scratch
            .as_mut_slice()
            .par_chunks_mut(nx)
            .enumerate()
            .for_each(|(j, row)| {
                let j = j as isize;
                for (i_us, out) in row.iter_mut().enumerate() {
                    let i = i_us as isize;
                    let u = sample(i, j);
                    *out = u
                        + rx * (sample(i + 1, j) - 2.0 * u + sample(i - 1, j))
                        + ry * (sample(i, j + 1) - 2.0 * u + sample(i, j - 1));
                }
            });

        self.commit_step();
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// The 5-point FTCS update. The expression tree must stay exactly as the
/// reference implementation writes it — floating-point addition is not
/// associative, and the determinism suites compare output bytes.
#[inline(always)]
fn update(u: f64, e: f64, w: f64, n: f64, s: f64, rx: f64, ry: f64) -> f64 {
    u + rx * (e - 2.0 * u + w) + ry * (n - 2.0 * u + s)
}

/// One output row. `north`/`south` yield the vertical neighbors of column
/// `i` whose center value is `u`; wall rows substitute the ghost there.
/// Interior columns take the branch-free indexed path; the two wall
/// columns are peeled out explicitly.
#[inline(always)]
fn stencil_row<G, N, S>(
    row: &mut [f64],
    cur: &[f64],
    rx: f64,
    ry: f64,
    ghost: G,
    north: N,
    south: S,
) where
    G: Fn(f64) -> f64,
    N: Fn(usize, f64) -> f64,
    S: Fn(usize, f64) -> f64,
{
    let last = cur.len() - 1;
    let u = cur[0];
    row[0] = update(u, cur[1], ghost(u), north(0, u), south(0, u), rx, ry);
    for i in 1..last {
        let u = cur[i];
        row[i] = update(u, cur[i + 1], cur[i - 1], north(i, u), south(i, u), rx, ry);
    }
    let u = cur[last];
    row[last] = update(
        u,
        ghost(u),
        cur[last - 1],
        north(last, u),
        south(last, u),
        rx,
        ry,
    );
}

/// One full time level on the fast path. `ghost(u)` is the value of an
/// out-of-grid neighbor of a wall cell holding `u`.
fn step_field<G>(prev: &[f64], out: &mut [f64], nx: usize, ny: usize, rx: f64, ry: f64, ghost: G)
where
    G: Fn(f64) -> f64 + Copy + Send + Sync,
{
    let last_row = ny - 1;
    out.par_chunks_mut(nx).enumerate().for_each(|(j, row)| {
        let base = j * nx;
        let cur = &prev[base..base + nx];
        if j == 0 {
            let north = &prev[base + nx..base + 2 * nx];
            stencil_row(row, cur, rx, ry, ghost, |i, _| north[i], |_, u| ghost(u));
        } else if j == last_row {
            let south = &prev[base - nx..base];
            stencil_row(row, cur, rx, ry, ghost, |_, u| ghost(u), |i, _| south[i]);
        } else {
            let north = &prev[base + nx..base + 2 * nx];
            let south = &prev[base - nx..base];
            stencil_row(row, cur, rx, ry, ghost, |i, _| north[i], |i, _| south[i]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver(initial: Grid, config: SolverConfig) -> HeatSolver {
        HeatSolver::new(initial, config).expect("valid test config")
    }

    fn hot_center(n: usize) -> Grid {
        let mut g = Grid::zeros(n, n);
        g.set(n / 2, n / 2, 100.0);
        g
    }

    #[test]
    fn cfl_violation_is_rejected() {
        let cfg = SolverConfig {
            alpha: 1.0,
            dt: 1.0,
            ..Default::default()
        };
        let err = HeatSolver::new(Grid::zeros(32, 32), cfg).unwrap_err();
        assert!(matches!(err, SolverError::Unstable { .. }));
        assert!(err.to_string().contains("FTCS unstable"), "{err}");
    }

    #[test]
    fn out_of_grid_source_is_rejected() {
        let cfg = SolverConfig {
            sources: vec![PointSource {
                i: 99,
                j: 0,
                rate: 1.0,
            }],
            ..Default::default()
        };
        let err = HeatSolver::new(Grid::zeros(16, 16), cfg).unwrap_err();
        assert!(matches!(err, SolverError::SourceOutsideGrid { .. }));
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn non_finite_parameters_are_rejected_not_panicked() {
        for (alpha, dt) in [
            (f64::NAN, 0.1),
            (f64::INFINITY, 0.1),
            (1e-4, f64::NAN),
            (1e-4, f64::NEG_INFINITY),
        ] {
            let cfg = SolverConfig {
                alpha,
                dt,
                ..Default::default()
            };
            let err = HeatSolver::new(Grid::zeros(8, 8), cfg).unwrap_err();
            assert!(
                matches!(err, SolverError::NonFiniteParameter { .. }),
                "alpha={alpha} dt={dt}: {err}"
            );
        }
        // NaN used to slip past `assert!(cfl <= …)` into a poisoned solver
        // on one comparison direction and panic on the other; now both are
        // structured errors, as are negatives (which sailed through the
        // CFL check entirely).
        let neg = SolverConfig {
            alpha: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            HeatSolver::new(Grid::zeros(8, 8), neg).unwrap_err(),
            SolverError::NegativeParameter { .. }
        ));
    }

    #[test]
    fn non_finite_source_rate_is_rejected() {
        let cfg = SolverConfig {
            sources: vec![PointSource {
                i: 2,
                j: 2,
                rate: f64::NAN,
            }],
            ..Default::default()
        };
        assert!(matches!(
            HeatSolver::new(Grid::zeros(8, 8), cfg).unwrap_err(),
            SolverError::NonFiniteSourceRate { .. }
        ));
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit() {
        for boundary in [Boundary::Dirichlet(1.5), Boundary::Neumann] {
            let cfg = SolverConfig {
                boundary,
                ..Default::default()
            };
            let init = Grid::from_fn(19, 11, |x, y| (x * 9.0).sin() + (y * 4.0).cos());
            let mut fast = solver(init.clone(), cfg.clone());
            let mut reference = solver(init, cfg);
            for step in 0..40 {
                fast.step();
                reference.step_reference();
                assert_eq!(
                    fast.grid().as_slice(),
                    reference.grid().as_slice(),
                    "{boundary:?} diverged at step {step}"
                );
            }
            assert_eq!(fast.cell_updates(), reference.cell_updates());
        }
    }

    #[test]
    fn heat_diffuses_outward() {
        let mut s = solver(hot_center(33), SolverConfig::default());
        let peak_before = s.grid().max();
        s.run(50);
        let c = 33 / 2;
        assert!(s.grid().max() < peak_before, "peak must decay");
        assert!(s.grid().at(c + 1, c) > 0.0, "neighbors must warm up");
        assert_eq!(s.steps_taken(), 50);
        assert_eq!(s.cell_updates(), 50 * 33 * 33);
    }

    #[test]
    fn maximum_principle_without_sources() {
        let mut s = solver(
            Grid::from_fn(24, 24, |x, y| (x * 9.0).sin() * (y * 7.0).cos()),
            SolverConfig::default(),
        );
        let (lo, hi) = (s.grid().min().min(0.0), s.grid().max().max(0.0));
        s.run(200);
        assert!(s.grid().min() >= lo - 1e-9, "new minimum appeared");
        assert!(s.grid().max() <= hi + 1e-9, "new maximum appeared");
    }

    #[test]
    fn neumann_conserves_total_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            ..Default::default()
        };
        let mut s = solver(hot_center(21), cfg);
        let before = s.grid().total();
        s.run(300);
        let after = s.grid().total();
        assert!(
            (after - before).abs() < 1e-8 * before.abs().max(1.0),
            "{before} -> {after}"
        );
    }

    #[test]
    fn dirichlet_relaxes_to_wall_temperature() {
        let cfg = SolverConfig {
            alpha: 1.0e-3,
            dt: 0.1,
            boundary: Boundary::Dirichlet(5.0),
            sources: Vec::new(),
        };
        let mut s = solver(Grid::zeros(16, 16), cfg);
        s.run(5000);
        let center = s.grid().at(8, 8);
        assert!(
            (center - 5.0).abs() < 0.05,
            "center {center} should approach 5.0"
        );
    }

    #[test]
    fn point_source_injects_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            sources: vec![PointSource {
                i: 8,
                j: 8,
                rate: 10.0,
            }],
            ..Default::default()
        };
        let mut s = solver(Grid::zeros(17, 17), cfg);
        s.run(100);
        // 100 steps × 10 units/s × 0.1 s = 100 units of heat injected.
        assert!((s.grid().total() - 100.0).abs() < 1e-9);
        assert!(s.grid().at(8, 8) > s.grid().at(0, 0));
    }

    #[test]
    fn symmetric_initial_condition_stays_symmetric() {
        let mut s = solver(hot_center(33), SolverConfig::default());
        s.run(80);
        let g = s.grid();
        for j in 0..33 {
            for i in 0..17 {
                let a = g.at(i, j);
                let b = g.at(32 - i, j);
                assert!(
                    (a - b).abs() < 1e-12,
                    "x-asymmetry at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        // Run the same problem under a single-thread pool and the global
        // pool; rayon must not change the arithmetic.
        let cfg = SolverConfig::default();
        let init = Grid::from_fn(48, 32, |x, y| (x * 3.0).sin() + (y * 5.0).cos());
        let mut par = solver(init.clone(), cfg.clone());
        par.run(60);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let seq = pool.install(|| {
            let mut s = solver(init, cfg);
            s.run(60);
            s.grid().clone()
        });
        assert_eq!(par.grid(), &seq);
    }
}
