//! Explicit (FTCS) finite-difference solver for the 2-D heat equation.
//!
//! `∂u/∂t = α ∇²u + q`, advanced with forward-time centered-space stepping on
//! the unit square. The interior update is parallelized over rows with rayon
//! (each output row depends only on the previous time level, so rows are
//! independent). Stability requires the CFL condition
//! `α·Δt·(1/Δx² + 1/Δy²) ≤ ½`, checked at construction.
//!
//! The production [`HeatSolver::step`] splits every row into an interior
//! fast path (pure indexed 5-point update, no branches, no bounds casts)
//! plus explicit boundary-column handling; the straight-line
//! [`HeatSolver::step_reference`] implementation is kept as the bit-for-bit
//! oracle and as the pre-optimization baseline the `greenness bench`
//! trajectory measures speedups against.
//!
//! ## Threading
//!
//! [`HeatSolver::set_jobs`] turns on domain decomposition: the output rows
//! are split into contiguous bands — a pure function of `(ny, jobs)`, so
//! the decomposition never depends on scheduling — and the bands run on the
//! bounded work-stealing pool from `greenness-pool`. Each band reads the
//! shared previous level and writes only its own disjoint slice, and every
//! cell's update expression is exactly the sequential one, so results are
//! **bit-identical for every `jobs` value** (pinned by tests here and by
//! `tests/bench_trajectory.rs`). With more workers than rows the partition
//! degenerates cleanly to one row per band.

use std::fmt;
use std::sync::{Mutex, PoisonError};

use greenness_pool::run_pool;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::grid::Grid;

/// Boundary condition applied on all four edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Boundary {
    /// Fixed edge temperature (heat flows through the walls).
    Dirichlet(f64),
    /// Insulated walls (zero flux; total heat is conserved).
    Neumann,
}

/// A continuous point heat source: adds `rate` to one cell per unit time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSource {
    /// Cell x-index.
    pub i: usize,
    /// Cell y-index.
    pub j: usize,
    /// Heating rate, temperature units per second.
    pub rate: f64,
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Thermal diffusivity α.
    pub alpha: f64,
    /// Timestep Δt, seconds of *physical* (not virtual-platform) time.
    pub dt: f64,
    /// Boundary condition on every edge.
    pub boundary: Boundary,
    /// Point sources active throughout the run.
    pub sources: Vec<PointSource>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            alpha: 1.0e-4,
            dt: 0.1,
            boundary: Boundary::Dirichlet(0.0),
            sources: Vec::new(),
        }
    }
}

/// Why a solver could not be constructed. These conditions are reachable
/// from CLI flags, so they are reported as values (mapped to the binaries'
/// uniform exit-2 usage path) rather than panics.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// `alpha` or `dt` is NaN or infinite.
    NonFiniteParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `alpha` or `dt` is negative.
    NegativeParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The CFL stability condition `α·Δt·(1/Δx² + 1/Δy²) ≤ ½` is violated.
    Unstable {
        /// The computed CFL number.
        cfl: f64,
    },
    /// A point source lies outside the grid.
    SourceOutsideGrid {
        /// Source x-index.
        i: usize,
        /// Source y-index.
        j: usize,
        /// Grid width.
        nx: usize,
        /// Grid height.
        ny: usize,
    },
    /// A point source has a NaN or infinite heating rate.
    NonFiniteSourceRate {
        /// Source x-index.
        i: usize,
        /// Source y-index.
        j: usize,
        /// The offending rate.
        rate: f64,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::NonFiniteParameter { name, value } => {
                write!(f, "{name} must be finite, got {value}")
            }
            SolverError::NegativeParameter { name, value } => {
                write!(f, "{name} must be non-negative, got {value}")
            }
            SolverError::Unstable { cfl } => {
                write!(
                    f,
                    "FTCS unstable: alpha*dt*(1/dx^2+1/dy^2) = {cfl:.3} > 0.5"
                )
            }
            SolverError::SourceOutsideGrid { i, j, nx, ny } => {
                write!(f, "source ({i}, {j}) outside {nx}x{ny} grid")
            }
            SolverError::NonFiniteSourceRate { i, j, rate } => {
                write!(f, "source ({i}, {j}) rate must be finite, got {rate}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl SolverConfig {
    /// Check this configuration against an `nx × ny` grid without building
    /// a solver — the validation [`HeatSolver::new`] performs, exposed so
    /// CLI front ends can reject bad flags before any work starts.
    pub fn validate(&self, nx: usize, ny: usize) -> Result<(), SolverError> {
        for (name, value) in [("alpha", self.alpha), ("dt", self.dt)] {
            if !value.is_finite() {
                return Err(SolverError::NonFiniteParameter { name, value });
            }
            if value < 0.0 {
                return Err(SolverError::NegativeParameter { name, value });
            }
        }
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let cfl = self.alpha * self.dt * (1.0 / (dx * dx) + 1.0 / (dy * dy));
        // alpha and dt are already known finite, so cfl cannot be NaN here
        // and a plain > comparison is exhaustive.
        if cfl > 0.5 + 1e-12 {
            return Err(SolverError::Unstable { cfl });
        }
        for s in &self.sources {
            if s.i >= nx || s.j >= ny {
                return Err(SolverError::SourceOutsideGrid {
                    i: s.i,
                    j: s.j,
                    nx,
                    ny,
                });
            }
            if !s.rate.is_finite() {
                return Err(SolverError::NonFiniteSourceRate {
                    i: s.i,
                    j: s.j,
                    rate: s.rate,
                });
            }
        }
        Ok(())
    }
}

/// The heat-equation integrator. Owns the current and scratch fields.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    config: SolverConfig,
    grid: Grid,
    scratch: Grid,
    steps_taken: u64,
    cell_updates: u64,
    jobs: usize,
}

impl HeatSolver {
    /// Build a solver over `initial`. Fails if `alpha`/`dt` are non-finite
    /// or negative, the CFL stability condition is violated, or a source
    /// lies outside the grid.
    pub fn new(initial: Grid, config: SolverConfig) -> Result<HeatSolver, SolverError> {
        config.validate(initial.nx(), initial.ny())?;
        let scratch = initial.clone();
        Ok(HeatSolver {
            config,
            grid: initial,
            scratch,
            steps_taken: 0,
            cell_updates: 0,
            jobs: 1,
        })
    }

    /// Set the worker count for [`Self::step`]'s domain decomposition.
    /// `jobs <= 1` keeps the sequential path. Results are bit-identical for
    /// every value — threading changes wall-clock, never bytes.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The current field.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Interior cell updates performed so far (the work measure the cost
    /// model charges).
    pub fn cell_updates(&self) -> u64 {
        self.cell_updates
    }

    /// The stencil coefficients `rx = α·Δt/Δx²`, `ry = α·Δt/Δy²`.
    fn coefficients(&self) -> (f64, f64) {
        let dx = 1.0 / self.grid.nx() as f64;
        let dy = 1.0 / self.grid.ny() as f64;
        let rx = self.config.alpha * self.config.dt / (dx * dx);
        let ry = self.config.alpha * self.config.dt / (dy * dy);
        (rx, ry)
    }

    /// Apply point sources to the freshly computed level, commit it, and
    /// advance the counters. Shared by both step implementations.
    fn commit_step(&mut self) {
        for s in &self.config.sources {
            let v = self.scratch.at(s.i, s.j) + s.rate * self.config.dt;
            self.scratch.set(s.i, s.j, v);
        }
        std::mem::swap(&mut self.grid, &mut self.scratch);
        self.steps_taken += 1;
        self.cell_updates += (self.grid.nx() * self.grid.ny()) as u64;
    }

    /// Advance one timestep on the fast path: per-row slices hoisted once,
    /// interior columns updated by pure indexed loads, wall columns and
    /// wall rows handled explicitly through the boundary's ghost formula.
    /// Bit-identical to [`Self::step_reference`] (pinned by unit tests,
    /// proptests, and the golden/image-equivalence suites).
    pub fn step(&mut self) {
        let (rx, ry) = self.coefficients();
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let prev = self.grid.as_slice();
        let out = self.scratch.as_mut_slice();
        // Both boundaries reduce an out-of-grid orthogonal neighbor to a
        // function of the wall cell's own value `u`: the clamped mirror
        // index of such a neighbor is the wall cell itself, so Dirichlet's
        // second-order ghost is `2v − u` and Neumann's reflection is `u`.
        let jobs = self.jobs;
        match self.config.boundary {
            Boundary::Dirichlet(v) => {
                step_field(prev, out, nx, ny, rx, ry, move |u| 2.0 * v - u, jobs)
            }
            Boundary::Neumann => step_field(prev, out, nx, ny, rx, ry, |u| u, jobs),
        }
        self.commit_step();
    }

    /// Advance one timestep through the original per-cell closure (match on
    /// `Boundary` + `isize` clamping for every sample). Retained as the
    /// reference oracle the fast path must match bit-for-bit, and as the
    /// baseline workload of the `greenness bench` stencil speedup metric.
    pub fn step_reference(&mut self) {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let (rx, ry) = self.coefficients();

        // Ghost-cell view of the previous level under the active boundary.
        let prev = self.grid.as_slice();
        let boundary = self.config.boundary;
        let sample = move |i: isize, j: isize| -> f64 {
            match boundary {
                Boundary::Dirichlet(v) => {
                    if i < 0 || j < 0 || i >= nx as isize || j >= ny as isize {
                        // Second-order ghost for a cell-centered mesh: the
                        // wall value sits on the face between the ghost and
                        // the nearest interior cell.
                        let ii = i.clamp(0, nx as isize - 1) as usize;
                        let jj = j.clamp(0, ny as isize - 1) as usize;
                        2.0 * v - prev[jj * nx + ii]
                    } else {
                        prev[j as usize * nx + i as usize]
                    }
                }
                Boundary::Neumann => {
                    // Reflect: zero-flux mirror at the walls.
                    let i = i.clamp(0, nx as isize - 1) as usize;
                    let j = j.clamp(0, ny as isize - 1) as usize;
                    prev[j * nx + i]
                }
            }
        };

        self.scratch
            .as_mut_slice()
            .par_chunks_mut(nx)
            .enumerate()
            .for_each(|(j, row)| {
                let j = j as isize;
                for (i_us, out) in row.iter_mut().enumerate() {
                    let i = i_us as isize;
                    let u = sample(i, j);
                    *out = u
                        + rx * (sample(i + 1, j) - 2.0 * u + sample(i - 1, j))
                        + ry * (sample(i, j + 1) - 2.0 * u + sample(i, j - 1));
                }
            });

        self.commit_step();
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// The 5-point FTCS update. The expression tree must stay exactly as the
/// reference implementation writes it — floating-point addition is not
/// associative, and the determinism suites compare output bytes.
#[inline(always)]
fn update(u: f64, e: f64, w: f64, n: f64, s: f64, rx: f64, ry: f64) -> f64 {
    u + rx * (e - 2.0 * u + w) + ry * (n - 2.0 * u + s)
}

/// One output row where one vertical neighbor may be a ghost (wall rows).
/// `north`/`south` yield the vertical neighbors of column `i` whose center
/// value is `u`. Interior columns take the branch-free indexed path; the
/// two wall columns are peeled out explicitly.
#[inline(always)]
fn stencil_row<G, N, S>(
    row: &mut [f64],
    cur: &[f64],
    rx: f64,
    ry: f64,
    ghost: G,
    north: N,
    south: S,
) where
    G: Fn(f64) -> f64,
    N: Fn(usize, f64) -> f64,
    S: Fn(usize, f64) -> f64,
{
    let last = cur.len() - 1;
    let u = cur[0];
    row[0] = update(u, cur[1], ghost(u), north(0, u), south(0, u), rx, ry);
    for i in 1..last {
        let u = cur[i];
        row[i] = update(u, cur[i + 1], cur[i - 1], north(i, u), south(i, u), rx, ry);
    }
    let u = cur[last];
    row[last] = update(
        u,
        ghost(u),
        cur[last - 1],
        north(last, u),
        south(last, u),
        rx,
        ry,
    );
}

/// Interior (non-wall) rows, where all four neighbors are real slices. The
/// middle columns walk `[f64; 8]` chunks — six parallel arrays with a
/// fixed-trip inner loop, the shape LLVM autovectorizes — and the scalar
/// remainder plus both wall columns use the very same [`update`] expression,
/// so the chunking changes instruction scheduling, never results.
#[inline(always)]
fn stencil_row_interior<G>(
    row: &mut [f64],
    cur: &[f64],
    north: &[f64],
    south: &[f64],
    rx: f64,
    ry: f64,
    ghost: G,
) where
    G: Fn(f64) -> f64,
{
    const LANES: usize = 8;
    let last = cur.len() - 1;
    let u = cur[0];
    row[0] = update(u, cur[1], ghost(u), north[0], south[0], rx, ry);
    // n interior columns starting at 1: center c, east e, west w.
    let n = last - 1;
    let chunks = n / LANES;
    for blk in 0..chunks {
        let base = 1 + blk * LANES;
        let o: &mut [f64; LANES] = (&mut row[base..base + LANES]).try_into().expect("chunk");
        let c: &[f64; LANES] = cur[base..base + LANES].try_into().expect("chunk");
        let e: &[f64; LANES] = cur[base + 1..base + 1 + LANES].try_into().expect("chunk");
        let w: &[f64; LANES] = cur[base - 1..base - 1 + LANES].try_into().expect("chunk");
        let nn: &[f64; LANES] = north[base..base + LANES].try_into().expect("chunk");
        let ss: &[f64; LANES] = south[base..base + LANES].try_into().expect("chunk");
        for k in 0..LANES {
            o[k] = update(c[k], e[k], w[k], nn[k], ss[k], rx, ry);
        }
    }
    for i in 1 + chunks * LANES..last {
        let u = cur[i];
        row[i] = update(u, cur[i + 1], cur[i - 1], north[i], south[i], rx, ry);
    }
    let u = cur[last];
    row[last] = update(u, ghost(u), cur[last - 1], north[last], south[last], rx, ry);
}

/// Compute a contiguous band of output rows starting at global row `j0`.
/// `band` is the destination slice (`rows × nx` cells); `prev` is the full
/// previous level, so neighbor rows just outside the band stay in reach.
#[allow(clippy::too_many_arguments)]
fn step_rows<G>(
    prev: &[f64],
    band: &mut [f64],
    nx: usize,
    ny: usize,
    j0: usize,
    rx: f64,
    ry: f64,
    ghost: G,
) where
    G: Fn(f64) -> f64 + Copy,
{
    let last_row = ny - 1;
    for (jj, row) in band.chunks_mut(nx).enumerate() {
        let j = j0 + jj;
        let base = j * nx;
        let cur = &prev[base..base + nx];
        if j == 0 {
            let north = &prev[base + nx..base + 2 * nx];
            stencil_row(row, cur, rx, ry, ghost, |i, _| north[i], |_, u| ghost(u));
        } else if j == last_row {
            let south = &prev[base - nx..base];
            stencil_row(row, cur, rx, ry, ghost, |_, u| ghost(u), |i, _| south[i]);
        } else {
            let north = &prev[base + nx..base + 2 * nx];
            let south = &prev[base - nx..base];
            stencil_row_interior(row, cur, north, south, rx, ry, ghost);
        }
    }
}

/// Row counts of the contiguous bands `jobs` workers get over `ny` rows —
/// a pure function of `(ny, jobs)`, so the decomposition is identical
/// across runs and never depends on which worker executes which band. With
/// more workers than rows this degenerates cleanly to one row per band.
fn partition_rows(ny: usize, jobs: usize) -> Vec<usize> {
    let tiles = jobs.clamp(1, ny.max(1));
    let base = ny / tiles;
    let rem = ny % tiles;
    (0..tiles).map(|t| base + usize::from(t < rem)).collect()
}

/// One full time level on the fast path. `ghost(u)` is the value of an
/// out-of-grid neighbor of a wall cell holding `u`. With `jobs > 1` the
/// row bands run on the work-stealing pool; every band writes only its own
/// disjoint slice of `out`, so which worker runs a band never affects the
/// output bytes.
#[allow(clippy::too_many_arguments)]
fn step_field<G>(
    prev: &[f64],
    out: &mut [f64],
    nx: usize,
    ny: usize,
    rx: f64,
    ry: f64,
    ghost: G,
    jobs: usize,
) where
    G: Fn(f64) -> f64 + Copy + Send + Sync,
{
    let tiles = partition_rows(ny, jobs);
    if tiles.len() <= 1 {
        step_rows(prev, out, nx, ny, 0, rx, ry, ghost);
        return;
    }
    // Disjoint destination bands behind per-band mutexes: split_at_mut
    // proves disjointness to the borrow checker, the (uncontended) mutexes
    // make the bands reachable from the pool's Sync closure.
    let mut bands: Vec<Mutex<(usize, &mut [f64])>> = Vec::with_capacity(tiles.len());
    let mut rest = out;
    let mut j0 = 0;
    for &rows in &tiles {
        let (band, tail) = rest.split_at_mut(rows * nx);
        bands.push(Mutex::new((j0, band)));
        rest = tail;
        j0 += rows;
    }
    let mut first_panic: Option<String> = None;
    run_pool(
        bands.len(),
        jobs,
        &|t| {
            let mut guard = bands[t].lock().unwrap_or_else(PoisonError::into_inner);
            let (j0, band) = &mut *guard;
            step_rows(prev, band, nx, ny, *j0, rx, ry, ghost);
        },
        &mut |_, result| {
            if let (Err(message), None) = (result, &first_panic) {
                first_panic = Some(message);
            }
        },
    );
    if let Some(message) = first_panic {
        panic!("stencil band worker panicked: {message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver(initial: Grid, config: SolverConfig) -> HeatSolver {
        HeatSolver::new(initial, config).expect("valid test config")
    }

    fn hot_center(n: usize) -> Grid {
        let mut g = Grid::zeros(n, n);
        g.set(n / 2, n / 2, 100.0);
        g
    }

    #[test]
    fn cfl_violation_is_rejected() {
        let cfg = SolverConfig {
            alpha: 1.0,
            dt: 1.0,
            ..Default::default()
        };
        let err = HeatSolver::new(Grid::zeros(32, 32), cfg).unwrap_err();
        assert!(matches!(err, SolverError::Unstable { .. }));
        assert!(err.to_string().contains("FTCS unstable"), "{err}");
    }

    #[test]
    fn out_of_grid_source_is_rejected() {
        let cfg = SolverConfig {
            sources: vec![PointSource {
                i: 99,
                j: 0,
                rate: 1.0,
            }],
            ..Default::default()
        };
        let err = HeatSolver::new(Grid::zeros(16, 16), cfg).unwrap_err();
        assert!(matches!(err, SolverError::SourceOutsideGrid { .. }));
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn non_finite_parameters_are_rejected_not_panicked() {
        for (alpha, dt) in [
            (f64::NAN, 0.1),
            (f64::INFINITY, 0.1),
            (1e-4, f64::NAN),
            (1e-4, f64::NEG_INFINITY),
        ] {
            let cfg = SolverConfig {
                alpha,
                dt,
                ..Default::default()
            };
            let err = HeatSolver::new(Grid::zeros(8, 8), cfg).unwrap_err();
            assert!(
                matches!(err, SolverError::NonFiniteParameter { .. }),
                "alpha={alpha} dt={dt}: {err}"
            );
        }
        // NaN used to slip past `assert!(cfl <= …)` into a poisoned solver
        // on one comparison direction and panic on the other; now both are
        // structured errors, as are negatives (which sailed through the
        // CFL check entirely).
        let neg = SolverConfig {
            alpha: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            HeatSolver::new(Grid::zeros(8, 8), neg).unwrap_err(),
            SolverError::NegativeParameter { .. }
        ));
    }

    #[test]
    fn non_finite_source_rate_is_rejected() {
        let cfg = SolverConfig {
            sources: vec![PointSource {
                i: 2,
                j: 2,
                rate: f64::NAN,
            }],
            ..Default::default()
        };
        assert!(matches!(
            HeatSolver::new(Grid::zeros(8, 8), cfg).unwrap_err(),
            SolverError::NonFiniteSourceRate { .. }
        ));
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit() {
        for boundary in [Boundary::Dirichlet(1.5), Boundary::Neumann] {
            let cfg = SolverConfig {
                boundary,
                ..Default::default()
            };
            let init = Grid::from_fn(19, 11, |x, y| (x * 9.0).sin() + (y * 4.0).cos());
            let mut fast = solver(init.clone(), cfg.clone());
            let mut reference = solver(init, cfg);
            for step in 0..40 {
                fast.step();
                reference.step_reference();
                assert_eq!(
                    fast.grid().as_slice(),
                    reference.grid().as_slice(),
                    "{boundary:?} diverged at step {step}"
                );
            }
            assert_eq!(fast.cell_updates(), reference.cell_updates());
        }
    }

    #[test]
    fn heat_diffuses_outward() {
        let mut s = solver(hot_center(33), SolverConfig::default());
        let peak_before = s.grid().max();
        s.run(50);
        let c = 33 / 2;
        assert!(s.grid().max() < peak_before, "peak must decay");
        assert!(s.grid().at(c + 1, c) > 0.0, "neighbors must warm up");
        assert_eq!(s.steps_taken(), 50);
        assert_eq!(s.cell_updates(), 50 * 33 * 33);
    }

    #[test]
    fn maximum_principle_without_sources() {
        let mut s = solver(
            Grid::from_fn(24, 24, |x, y| (x * 9.0).sin() * (y * 7.0).cos()),
            SolverConfig::default(),
        );
        let (lo, hi) = (s.grid().min().min(0.0), s.grid().max().max(0.0));
        s.run(200);
        assert!(s.grid().min() >= lo - 1e-9, "new minimum appeared");
        assert!(s.grid().max() <= hi + 1e-9, "new maximum appeared");
    }

    #[test]
    fn neumann_conserves_total_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            ..Default::default()
        };
        let mut s = solver(hot_center(21), cfg);
        let before = s.grid().total();
        s.run(300);
        let after = s.grid().total();
        assert!(
            (after - before).abs() < 1e-8 * before.abs().max(1.0),
            "{before} -> {after}"
        );
    }

    #[test]
    fn dirichlet_relaxes_to_wall_temperature() {
        let cfg = SolverConfig {
            alpha: 1.0e-3,
            dt: 0.1,
            boundary: Boundary::Dirichlet(5.0),
            sources: Vec::new(),
        };
        let mut s = solver(Grid::zeros(16, 16), cfg);
        s.run(5000);
        let center = s.grid().at(8, 8);
        assert!(
            (center - 5.0).abs() < 0.05,
            "center {center} should approach 5.0"
        );
    }

    #[test]
    fn point_source_injects_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            sources: vec![PointSource {
                i: 8,
                j: 8,
                rate: 10.0,
            }],
            ..Default::default()
        };
        let mut s = solver(Grid::zeros(17, 17), cfg);
        s.run(100);
        // 100 steps × 10 units/s × 0.1 s = 100 units of heat injected.
        assert!((s.grid().total() - 100.0).abs() < 1e-9);
        assert!(s.grid().at(8, 8) > s.grid().at(0, 0));
    }

    #[test]
    fn symmetric_initial_condition_stays_symmetric() {
        let mut s = solver(hot_center(33), SolverConfig::default());
        s.run(80);
        let g = s.grid();
        for j in 0..33 {
            for i in 0..17 {
                let a = g.at(i, j);
                let b = g.at(32 - i, j);
                assert!(
                    (a - b).abs() < 1e-12,
                    "x-asymmetry at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn threaded_step_is_bit_identical_for_every_job_count() {
        for boundary in [Boundary::Dirichlet(1.5), Boundary::Neumann] {
            let cfg = SolverConfig {
                boundary,
                ..Default::default()
            };
            // nx = 37 engages the [f64; 8] chunked interior path (multiple
            // chunks plus a scalar remainder).
            let init = Grid::from_fn(37, 23, |x, y| (x * 9.0).sin() + (y * 4.0).cos());
            let mut reference = solver(init.clone(), cfg.clone());
            for _ in 0..25 {
                reference.step_reference();
            }
            for jobs in [1usize, 2, 3, 8, 64] {
                let mut s = solver(init.clone(), cfg.clone());
                s.set_jobs(jobs);
                assert_eq!(s.jobs(), jobs);
                for _ in 0..25 {
                    s.step();
                }
                assert_eq!(
                    s.grid().as_slice(),
                    reference.grid().as_slice(),
                    "{boundary:?} diverged at jobs={jobs}"
                );
                assert_eq!(s.cell_updates(), reference.cell_updates());
            }
        }
    }

    #[test]
    fn degenerate_slabs_with_more_workers_than_rows_fall_back_cleanly() {
        // The PR-5 proptested slab shapes: 3×N and N×3, plus the thinnest
        // legal slabs — jobs far exceeds the row count, so the partition
        // must degenerate to one row per band without empty bands or
        // out-of-range neighbor slices.
        for (nx, ny) in [(3usize, 37usize), (37, 3), (3, 3), (3, 4), (4, 3)] {
            for boundary in [Boundary::Dirichlet(0.5), Boundary::Neumann] {
                let cfg = SolverConfig {
                    boundary,
                    ..Default::default()
                };
                let init = Grid::from_fn(nx, ny, |x, y| (x * 7.0).sin() * (y * 3.0).cos());
                let mut reference = solver(init.clone(), cfg.clone());
                let mut threaded = solver(init, cfg);
                threaded.set_jobs(8);
                for step in 0..15 {
                    reference.step_reference();
                    threaded.step();
                    assert_eq!(
                        threaded.grid().as_slice(),
                        reference.grid().as_slice(),
                        "{nx}x{ny} {boundary:?} diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_rows_is_exact_and_degenerates_cleanly() {
        for (ny, jobs) in [(7usize, 2usize), (3, 8), (1, 8), (64, 8), (5, 5), (9, 1)] {
            let bands = partition_rows(ny, jobs);
            assert_eq!(bands.iter().sum::<usize>(), ny, "ny={ny} jobs={jobs}");
            assert!(bands.len() <= jobs.max(1));
            assert!(bands.iter().all(|&rows| rows >= 1), "empty band");
            let spread = bands.iter().max().unwrap() - bands.iter().min().unwrap();
            assert!(spread <= 1, "unbalanced bands {bands:?}");
        }
        assert_eq!(partition_rows(5, 0), vec![5], "jobs=0 clamps to one band");
    }

    #[test]
    fn set_jobs_zero_clamps_to_sequential() {
        let mut s = solver(hot_center(9), SolverConfig::default());
        s.set_jobs(0);
        assert_eq!(s.jobs(), 1);
        s.step();
        assert_eq!(s.steps_taken(), 1);
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        // Run the same problem under a single-thread pool and the global
        // pool; rayon must not change the arithmetic.
        let cfg = SolverConfig::default();
        let init = Grid::from_fn(48, 32, |x, y| (x * 3.0).sin() + (y * 5.0).cos());
        let mut par = solver(init.clone(), cfg.clone());
        par.run(60);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let seq = pool.install(|| {
            let mut s = solver(init, cfg);
            s.run(60);
            s.grid().clone()
        });
        assert_eq!(par.grid(), &seq);
    }
}
