//! Explicit (FTCS) finite-difference solver for the 2-D heat equation.
//!
//! `∂u/∂t = α ∇²u + q`, advanced with forward-time centered-space stepping on
//! the unit square. The interior update is parallelized over rows with rayon
//! (each output row depends only on the previous time level, so rows are
//! independent). Stability requires the CFL condition
//! `α·Δt·(1/Δx² + 1/Δy²) ≤ ½`, checked at construction.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::grid::Grid;

/// Boundary condition applied on all four edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Boundary {
    /// Fixed edge temperature (heat flows through the walls).
    Dirichlet(f64),
    /// Insulated walls (zero flux; total heat is conserved).
    Neumann,
}

/// A continuous point heat source: adds `rate` to one cell per unit time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointSource {
    /// Cell x-index.
    pub i: usize,
    /// Cell y-index.
    pub j: usize,
    /// Heating rate, temperature units per second.
    pub rate: f64,
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Thermal diffusivity α.
    pub alpha: f64,
    /// Timestep Δt, seconds of *physical* (not virtual-platform) time.
    pub dt: f64,
    /// Boundary condition on every edge.
    pub boundary: Boundary,
    /// Point sources active throughout the run.
    pub sources: Vec<PointSource>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            alpha: 1.0e-4,
            dt: 0.1,
            boundary: Boundary::Dirichlet(0.0),
            sources: Vec::new(),
        }
    }
}

/// The heat-equation integrator. Owns the current and scratch fields.
#[derive(Debug, Clone)]
pub struct HeatSolver {
    config: SolverConfig,
    grid: Grid,
    scratch: Grid,
    steps_taken: u64,
    cell_updates: u64,
}

impl HeatSolver {
    /// Build a solver over `initial`. Panics if the CFL stability condition
    /// is violated or a source lies outside the grid.
    pub fn new(initial: Grid, config: SolverConfig) -> HeatSolver {
        let nx = initial.nx();
        let ny = initial.ny();
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let cfl = config.alpha * config.dt * (1.0 / (dx * dx) + 1.0 / (dy * dy));
        assert!(
            cfl <= 0.5 + 1e-12,
            "FTCS unstable: alpha*dt*(1/dx^2+1/dy^2) = {cfl:.3} > 0.5"
        );
        for s in &config.sources {
            assert!(
                s.i < nx && s.j < ny,
                "source ({}, {}) outside {nx}x{ny} grid",
                s.i,
                s.j
            );
        }
        let scratch = initial.clone();
        HeatSolver {
            config,
            grid: initial,
            scratch,
            steps_taken: 0,
            cell_updates: 0,
        }
    }

    /// The current field.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Interior cell updates performed so far (the work measure the cost
    /// model charges).
    pub fn cell_updates(&self) -> u64 {
        self.cell_updates
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let rx = self.config.alpha * self.config.dt / (dx * dx);
        let ry = self.config.alpha * self.config.dt / (dy * dy);

        // Ghost-cell view of the previous level under the active boundary.
        let prev = self.grid.as_slice();
        let boundary = self.config.boundary;
        let sample = move |i: isize, j: isize| -> f64 {
            match boundary {
                Boundary::Dirichlet(v) => {
                    if i < 0 || j < 0 || i >= nx as isize || j >= ny as isize {
                        // Second-order ghost for a cell-centered mesh: the
                        // wall value sits on the face between the ghost and
                        // the nearest interior cell.
                        let ii = i.clamp(0, nx as isize - 1) as usize;
                        let jj = j.clamp(0, ny as isize - 1) as usize;
                        2.0 * v - prev[jj * nx + ii]
                    } else {
                        prev[j as usize * nx + i as usize]
                    }
                }
                Boundary::Neumann => {
                    // Reflect: zero-flux mirror at the walls.
                    let i = i.clamp(0, nx as isize - 1) as usize;
                    let j = j.clamp(0, ny as isize - 1) as usize;
                    prev[j * nx + i]
                }
            }
        };

        self.scratch
            .as_mut_slice()
            .par_chunks_mut(nx)
            .enumerate()
            .for_each(|(j, row)| {
                let j = j as isize;
                for (i_us, out) in row.iter_mut().enumerate() {
                    let i = i_us as isize;
                    let u = sample(i, j);
                    *out = u
                        + rx * (sample(i + 1, j) - 2.0 * u + sample(i - 1, j))
                        + ry * (sample(i, j + 1) - 2.0 * u + sample(i, j - 1));
                }
            });

        for s in &self.config.sources {
            let v = self.scratch.at(s.i, s.j) + s.rate * self.config.dt;
            self.scratch.set(s.i, s.j, v);
        }

        std::mem::swap(&mut self.grid, &mut self.scratch);
        self.steps_taken += 1;
        self.cell_updates += (nx * ny) as u64;
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_center(n: usize) -> Grid {
        let mut g = Grid::zeros(n, n);
        g.set(n / 2, n / 2, 100.0);
        g
    }

    #[test]
    #[should_panic(expected = "FTCS unstable")]
    fn cfl_violation_is_rejected() {
        let cfg = SolverConfig {
            alpha: 1.0,
            dt: 1.0,
            ..Default::default()
        };
        let _ = HeatSolver::new(Grid::zeros(32, 32), cfg);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_source_is_rejected() {
        let cfg = SolverConfig {
            sources: vec![PointSource {
                i: 99,
                j: 0,
                rate: 1.0,
            }],
            ..Default::default()
        };
        let _ = HeatSolver::new(Grid::zeros(16, 16), cfg);
    }

    #[test]
    fn heat_diffuses_outward() {
        let mut s = HeatSolver::new(hot_center(33), SolverConfig::default());
        let peak_before = s.grid().max();
        s.run(50);
        let c = 33 / 2;
        assert!(s.grid().max() < peak_before, "peak must decay");
        assert!(s.grid().at(c + 1, c) > 0.0, "neighbors must warm up");
        assert_eq!(s.steps_taken(), 50);
        assert_eq!(s.cell_updates(), 50 * 33 * 33);
    }

    #[test]
    fn maximum_principle_without_sources() {
        let mut s = HeatSolver::new(
            Grid::from_fn(24, 24, |x, y| (x * 9.0).sin() * (y * 7.0).cos()),
            SolverConfig::default(),
        );
        let (lo, hi) = (s.grid().min().min(0.0), s.grid().max().max(0.0));
        s.run(200);
        assert!(s.grid().min() >= lo - 1e-9, "new minimum appeared");
        assert!(s.grid().max() <= hi + 1e-9, "new maximum appeared");
    }

    #[test]
    fn neumann_conserves_total_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            ..Default::default()
        };
        let mut s = HeatSolver::new(hot_center(21), cfg);
        let before = s.grid().total();
        s.run(300);
        let after = s.grid().total();
        assert!(
            (after - before).abs() < 1e-8 * before.abs().max(1.0),
            "{before} -> {after}"
        );
    }

    #[test]
    fn dirichlet_relaxes_to_wall_temperature() {
        let cfg = SolverConfig {
            alpha: 1.0e-3,
            dt: 0.1,
            boundary: Boundary::Dirichlet(5.0),
            sources: Vec::new(),
        };
        let mut s = HeatSolver::new(Grid::zeros(16, 16), cfg);
        s.run(5000);
        let center = s.grid().at(8, 8);
        assert!(
            (center - 5.0).abs() < 0.05,
            "center {center} should approach 5.0"
        );
    }

    #[test]
    fn point_source_injects_heat() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            sources: vec![PointSource {
                i: 8,
                j: 8,
                rate: 10.0,
            }],
            ..Default::default()
        };
        let mut s = HeatSolver::new(Grid::zeros(17, 17), cfg);
        s.run(100);
        // 100 steps × 10 units/s × 0.1 s = 100 units of heat injected.
        assert!((s.grid().total() - 100.0).abs() < 1e-9);
        assert!(s.grid().at(8, 8) > s.grid().at(0, 0));
    }

    #[test]
    fn symmetric_initial_condition_stays_symmetric() {
        let mut s = HeatSolver::new(hot_center(33), SolverConfig::default());
        s.run(80);
        let g = s.grid();
        for j in 0..33 {
            for i in 0..17 {
                let a = g.at(i, j);
                let b = g.at(32 - i, j);
                assert!(
                    (a - b).abs() < 1e-12,
                    "x-asymmetry at ({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        // Run the same problem under a single-thread pool and the global
        // pool; rayon must not change the arithmetic.
        let cfg = SolverConfig::default();
        let init = Grid::from_fn(48, 32, |x, y| (x * 3.0).sin() + (y * 5.0).cos());
        let mut par = HeatSolver::new(init.clone(), cfg.clone());
        par.run(60);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let seq = pool.install(|| {
            let mut s = HeatSolver::new(init, cfg);
            s.run(60);
            s.grid().clone()
        });
        assert_eq!(par.grid(), &seq);
    }
}
