//! Analytic reference solutions used to validate the numerical solver.
//!
//! For the unit square with homogeneous Dirichlet boundaries (`u = 0` on all
//! edges) and the separable initial condition
//! `u₀(x, y) = sin(mπx)·sin(nπy)`, the heat equation has the closed-form
//! solution
//!
//! `u(x, y, t) = exp(−α π² (m² + n²) t) · sin(mπx) · sin(nπy)`.
//!
//! The FTCS scheme applied to this mode must reproduce the exponential decay
//! within its truncation error, which is the strongest easily-checkable
//! correctness statement about the solver.

use std::f64::consts::PI;

use crate::grid::Grid;

/// The separable eigenmode `sin(mπx)·sin(nπy)` sampled at cell centers.
pub fn eigenmode(nx: usize, ny: usize, m: u32, n: u32) -> Grid {
    Grid::from_fn(nx, ny, |x, y| {
        (m as f64 * PI * x).sin() * (n as f64 * PI * y).sin()
    })
}

/// Decay factor of mode `(m, n)` after time `t` with diffusivity `alpha`.
pub fn mode_decay(alpha: f64, m: u32, n: u32, t: f64) -> f64 {
    (-alpha * PI * PI * ((m * m + n * n) as f64) * t).exp()
}

/// Relative L2 error between `approx` and `exact` (‖a − e‖₂ / ‖e‖₂).
pub fn rel_l2_error(approx: &Grid, exact: &Grid) -> f64 {
    assert_eq!(approx.nx(), exact.nx());
    assert_eq!(approx.ny(), exact.ny());
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, e) in approx.as_slice().iter().zip(exact.as_slice()) {
        num += (a - e) * (a - e);
        den += e * e;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Boundary, HeatSolver, SolverConfig};

    /// Integrate mode (m, n) numerically and compare against the analytic
    /// decay; returns the relative L2 error.
    fn mode_error(nx: usize, m: u32, n: u32, steps: u64) -> f64 {
        let alpha = 5.0e-5;
        let dt = 0.5;
        let cfg = SolverConfig {
            alpha,
            dt,
            boundary: Boundary::Dirichlet(0.0),
            sources: Vec::new(),
        };
        let mut s = HeatSolver::new(eigenmode(nx, nx, m, n), cfg).expect("stable test config");
        s.run(steps);
        let t = steps as f64 * dt;
        let mut exact = eigenmode(nx, nx, m, n);
        let k = mode_decay(alpha, m, n, t);
        for v in exact.as_mut_slice() {
            *v *= k;
        }
        rel_l2_error(s.grid(), &exact)
    }

    #[test]
    fn fundamental_mode_matches_analytic_solution() {
        let err = mode_error(64, 1, 1, 400);
        assert!(err < 0.01, "relative L2 error {err} too large");
    }

    #[test]
    fn higher_mode_decays_faster_and_still_matches() {
        let err = mode_error(64, 2, 3, 400);
        assert!(err < 0.05, "relative L2 error {err} too large");
    }

    #[test]
    fn error_shrinks_under_grid_refinement() {
        // Fixed physical time; the spatial truncation error must drop as the
        // mesh refines (the scheme is 2nd-order in space).
        let coarse = mode_error(32, 1, 1, 200);
        let fine = mode_error(96, 1, 1, 200);
        assert!(fine < coarse, "refinement did not help: {coarse} -> {fine}");
    }

    #[test]
    fn decay_factor_sanity() {
        assert!((mode_decay(0.0, 1, 1, 10.0) - 1.0).abs() < 1e-15);
        assert!(mode_decay(1e-3, 1, 1, 100.0) < 1.0);
        assert!(mode_decay(1e-3, 3, 3, 1.0) < mode_decay(1e-3, 1, 1, 1.0));
    }

    #[test]
    fn rel_l2_error_basics() {
        let a = eigenmode(16, 16, 1, 1);
        assert_eq!(rel_l2_error(&a, &a), 0.0);
        let z = Grid::zeros(16, 16);
        assert!((rel_l2_error(&z, &a) - 1.0).abs() < 1e-12);
    }
}
