//! # greenness-heatsim
//!
//! The proxy heat-transfer simulation driving both visualization pipelines —
//! the role played in the paper by a finite-element heat-transfer proxy app
//! (its ref [4], Reddy & Gartling). We implement a 2-D explicit
//! finite-difference (FTCS) solver for the heat equation
//! `∂u/∂t = α ∇²u` with Dirichlet/Neumann boundaries and optional point
//! sources, parallelized over rows with rayon, and validated against the
//! analytic separable-series solution.
//!
//! The solver performs *real* computation — every snapshot that flows into
//! the storage stack and renderer is genuine solver output — while the
//! [`cost`] module translates the work performed into platform activities
//! whose timing is calibrated to the paper's measured simulation-phase
//! duration (see DESIGN.md §4: the paper's proxy did an implicit FEM solve
//! per step, so its per-cell cost is far higher than one explicit sweep;
//! the calibrated `flops_per_cell_update` carries that difference).

pub mod analytic;
pub mod cost;
pub mod grid;
pub mod solver;

pub use cost::SimCostModel;
pub use grid::Grid;
pub use solver::{Boundary, HeatSolver, PointSource, SolverConfig, SolverError};
