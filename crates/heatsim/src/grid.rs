//! The 2-D scalar field the solver evolves and the pipelines move around.
//!
//! Snapshots serialize to little-endian `f64` rows and are consumed by the
//! storage stack in fixed-size chunks — the paper fixes both the grid and the
//! chunk size at 128 KB (§IV-C); a 512×512 grid (2 MiB) written as 128 KiB
//! chunks reproduces its per-iteration I/O pattern.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A row-major 2-D field of `f64` samples on a uniform mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid {
    /// A grid of `nx × ny` cells, initialized to `value`.
    pub fn filled(nx: usize, ny: usize, value: f64) -> Grid {
        assert!(
            nx >= 3 && ny >= 3,
            "grid must be at least 3x3 (one interior cell)"
        );
        Grid {
            nx,
            ny,
            data: vec![value; nx * ny],
        }
    }

    /// A zero grid.
    pub fn zeros(nx: usize, ny: usize) -> Grid {
        Grid::filled(nx, ny, 0.0)
    }

    /// A grid initialized by `f(x, y)` with `x, y ∈ [0, 1]` at cell centers
    /// of the unit square.
    pub fn from_fn(nx: usize, ny: usize, f: impl Fn(f64, f64) -> f64) -> Grid {
        let mut g = Grid::zeros(nx, ny);
        for j in 0..ny {
            let y = (j as f64 + 0.5) / ny as f64;
            for i in 0..nx {
                let x = (i as f64 + 0.5) / nx as f64;
                g.data[j * nx + i] = f(x, y);
            }
        }
        g
    }

    /// Cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cell count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[j * self.nx + i]
    }

    /// Set the value at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[j * self.nx + i] = v;
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of all samples — proportional to total heat content, the quantity
    /// conserved under insulated (Neumann) boundaries.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Serialized snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> u64 {
        (self.cells() * std::mem::size_of::<f64>()) as u64
    }

    /// Serialize to little-endian `f64`s, row-major.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.cells() * 8);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Deserialize a snapshot produced by [`Grid::to_bytes`].
    ///
    /// Returns `None` if `bytes` is not exactly `nx × ny` little-endian
    /// `f64`s.
    pub fn from_bytes(nx: usize, ny: usize, bytes: &[u8]) -> Option<Grid> {
        if bytes.len() != nx * ny * 8 || nx < 3 || ny < 3 {
            return None;
        }
        let data = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Some(Grid { nx, ny, data })
    }

    /// Split a serialized snapshot into `chunk_bytes`-sized pieces (the last
    /// may be short) — the unit the paper's app writes per I/O operation.
    pub fn chunked(bytes: &Bytes, chunk_bytes: usize) -> Vec<Bytes> {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        let mut out = Vec::with_capacity(bytes.len().div_ceil(chunk_bytes));
        let mut off = 0;
        while off < bytes.len() {
            let end = (off + chunk_bytes).min(bytes.len());
            out.push(bytes.slice(off..end));
            off = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_is_2mib_in_128kib_chunks() {
        let g = Grid::zeros(512, 512);
        assert_eq!(g.snapshot_bytes(), 2 * 1024 * 1024);
        let chunks = Grid::chunked(&g.to_bytes(), 128 * 1024);
        assert_eq!(chunks.len(), 16);
        assert!(chunks.iter().all(|c| c.len() == 128 * 1024));
    }

    #[test]
    fn serialization_round_trips() {
        let g = Grid::from_fn(17, 9, |x, y| (x * 31.0).sin() + y * y);
        let b = g.to_bytes();
        let g2 = Grid::from_bytes(17, 9, &b).expect("round trip");
        assert_eq!(g, g2);
    }

    #[test]
    fn from_bytes_rejects_wrong_sizes() {
        let g = Grid::zeros(8, 8);
        let b = g.to_bytes();
        assert!(Grid::from_bytes(8, 8, &b[..b.len() - 1]).is_none());
        assert!(Grid::from_bytes(9, 8, &b).is_none());
    }

    #[test]
    fn chunking_preserves_content_and_order() {
        let g = Grid::from_fn(16, 16, |x, y| x + 100.0 * y);
        let b = g.to_bytes();
        let chunks = Grid::chunked(&b, 300); // deliberately unaligned
        let rejoined: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(&rejoined[..], &b[..]);
    }

    #[test]
    fn extrema_and_total() {
        let mut g = Grid::filled(4, 4, 2.0);
        g.set(1, 2, -3.0);
        g.set(2, 1, 7.0);
        assert_eq!(g.min(), -3.0);
        assert_eq!(g.max(), 7.0);
        assert!((g.total() - (14.0 * 2.0 - 3.0 + 7.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn tiny_grids_are_rejected() {
        let _ = Grid::zeros(2, 5);
    }

    #[test]
    fn from_fn_samples_cell_centers() {
        let g = Grid::from_fn(4, 4, |x, _| x);
        assert!((g.at(0, 0) - 0.125).abs() < 1e-12);
        assert!((g.at(3, 0) - 0.875).abs() < 1e-12);
    }
}
