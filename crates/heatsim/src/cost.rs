//! Translate solver work into platform activities.
//!
//! The paper's proxy application is an implicit finite-element heat solver;
//! ours is an explicit finite-difference sweep. One explicit sweep is ~4
//! orders of magnitude cheaper per cell than an implicit FEM assembly +
//! solve, so charging the platform for the raw sweep flops would shrink the
//! simulation phase to microseconds and destroy the paper's phase structure.
//! Instead, the cost model charges a *calibrated per-cell-update budget*
//! representing the full proxy-app step, chosen so a 512×512 grid timestep
//! takes ≈1.57 s on the Table I node — which reproduces the Figure 4 time
//! split (33% simulation for case study 1). The substitution is documented
//! in DESIGN.md §1/§4 and EXPERIMENTS.md.

use greenness_platform::Activity;
use serde::{Deserialize, Serialize};

/// Calibrated conversion from cell updates to platform compute activities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimCostModel {
    /// Floating-point operations charged per interior cell update
    /// (calibrated: implicit FEM step of the paper's proxy ≈ 4.6e5 flops per
    /// nodal unknown, giving 1.57 s per 512×512 timestep at the Table I
    /// node's 76.8 Gflop/s sustained).
    pub flops_per_cell_update: f64,
    /// DRAM traffic charged per cell update, bytes (calibrated to the ≈6 W
    /// DRAM dynamic power of the Figure 5 simulation phase).
    pub dram_bytes_per_cell_update: f64,
    /// Cores the solver keeps busy.
    pub cores: u32,
    /// Arithmetic intensity of the solve (1.0 = dense compute).
    pub intensity: f64,
}

impl Default for SimCostModel {
    fn default() -> Self {
        SimCostModel {
            flops_per_cell_update: 4.6e5,
            dram_bytes_per_cell_update: 7.55e4,
            cores: 16,
            intensity: 1.0,
        }
    }
}

impl SimCostModel {
    /// The compute activity for `cell_updates` interior updates.
    pub fn activity(&self, cell_updates: u64) -> Activity {
        Activity::Compute {
            flops: cell_updates as f64 * self.flops_per_cell_update,
            cores: self.cores,
            intensity: self.intensity,
            dram_bytes: (cell_updates as f64 * self.dram_bytes_per_cell_update) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::{HardwareSpec, Node, Phase};

    #[test]
    fn calibrated_timestep_duration_and_power() {
        // One 512×512 timestep on the Table I node: ≈1.57 s at ≈143 W
        // (the Figure 4/5 calibration anchors).
        let cost = SimCostModel::default();
        let mut node = Node::new(HardwareSpec::table1());
        let e = node.execute(cost.activity(512 * 512), Phase::Simulation);
        let secs = e.duration.as_secs_f64();
        assert!((secs - 1.57).abs() < 0.02, "got {secs}");
        let sys = e.draw.system_w();
        assert!((sys - 143.0).abs() < 0.7, "got {sys}");
    }

    #[test]
    fn cost_scales_linearly_with_updates() {
        let cost = SimCostModel::default();
        let node = Node::new(HardwareSpec::table1());
        let (t1, _) = node.cost_of(cost.activity(100_000));
        let (t2, _) = node.cost_of(cost.activity(200_000));
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_cores_take_longer() {
        let cost = SimCostModel {
            cores: 4,
            ..SimCostModel::default()
        };
        let node = Node::new(HardwareSpec::table1());
        let (t4, _) = node.cost_of(cost.activity(512 * 512));
        let (t16, _) = node.cost_of(SimCostModel::default().activity(512 * 512));
        assert!((t4 / t16 - 4.0).abs() < 1e-9);
    }
}
