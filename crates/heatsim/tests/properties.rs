//! Property-based tests for the heat solver and grid serialization.

use greenness_heatsim::{Boundary, Grid, HeatSolver, PointSource, SolverConfig};
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid> {
    (
        3usize..24,
        3usize..24,
        prop::collection::vec(-50.0..50.0f64, 1..16),
    )
        .prop_map(|(nx, ny, seeds)| {
            Grid::from_fn(nx, ny, |x, y| {
                seeds
                    .iter()
                    .enumerate()
                    .map(|(k, s)| s * ((k as f64 + 1.0) * (x + 2.0 * y)).sin())
                    .sum()
            })
        })
}

proptest! {
    /// Serialization round-trips exactly for arbitrary fields.
    #[test]
    fn snapshot_round_trip(g in arb_grid()) {
        let b = g.to_bytes();
        prop_assert_eq!(b.len() as u64, g.snapshot_bytes());
        let g2 = Grid::from_bytes(g.nx(), g.ny(), &b).expect("round trip");
        prop_assert_eq!(g, g2);
    }

    /// Chunking at any positive size reassembles to the original bytes.
    #[test]
    fn chunking_reassembles(g in arb_grid(), chunk in 1usize..4096) {
        let b = g.to_bytes();
        let chunks = Grid::chunked(&b, chunk);
        let rejoined: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        prop_assert_eq!(&rejoined[..], &b[..]);
        // All chunks except possibly the last are full-size.
        for c in &chunks[..chunks.len().saturating_sub(1)] {
            prop_assert_eq!(c.len(), chunk);
        }
    }

    /// Without sources, the discrete maximum principle holds for any stable
    /// configuration: values stay within the initial range extended by the
    /// wall temperature.
    #[test]
    fn maximum_principle(g in arb_grid(), wall in -20.0..20.0f64, steps in 1u64..100) {
        let cfg = SolverConfig {
            alpha: 1.0e-4,
            dt: 0.05,
            boundary: Boundary::Dirichlet(wall),
            sources: Vec::new(),
        };
        let lo = g.min().min(wall);
        let hi = g.max().max(wall);
        let mut s = HeatSolver::new(g, cfg).expect("stable config");
        s.run(steps);
        prop_assert!(s.grid().min() >= lo - 1e-9, "min {} < {}", s.grid().min(), lo);
        prop_assert!(s.grid().max() <= hi + 1e-9, "max {} > {}", s.grid().max(), hi);
    }

    /// Insulated boundaries conserve total heat exactly (up to roundoff),
    /// and with a source the total grows by exactly rate × time.
    #[test]
    fn heat_budget_under_neumann(
        g in arb_grid(),
        rate in 0.0..10.0f64,
        steps in 1u64..80,
    ) {
        let nx = g.nx();
        let ny = g.ny();
        let cfg = SolverConfig {
            alpha: 1.0e-4,
            dt: 0.05,
            boundary: Boundary::Neumann,
            sources: vec![PointSource { i: nx / 2, j: ny / 2, rate }],
        };
        let before = g.total();
        let mut s = HeatSolver::new(g, cfg).expect("stable config");
        s.run(steps);
        let injected = rate * 0.05 * steps as f64;
        let after = s.grid().total();
        let scale = before.abs().max(injected).max(1.0);
        prop_assert!((after - before - injected).abs() < 1e-8 * scale,
            "{before} + {injected} != {after}");
    }

    /// The solver is deterministic: same input, same result, regardless of
    /// how many times we run it.
    #[test]
    fn determinism(g in arb_grid(), steps in 1u64..50) {
        let cfg = SolverConfig::default();
        let mut a = HeatSolver::new(g.clone(), cfg.clone()).expect("stable config");
        let mut b = HeatSolver::new(g, cfg).expect("stable config");
        a.run(steps);
        b.run(steps);
        prop_assert_eq!(a.grid(), b.grid());
    }
}
