//! A striped parallel filesystem over dedicated I/O server nodes.
//!
//! Lustre-style shape: clients stripe file data round-robin across object
//! servers; each server runs the *full single-node storage stack* (page
//! cache, extent allocator, journal barriers) on its own disk, with its own
//! power timeline. Stripes to different servers are serviced concurrently,
//! so parallel-file-system bandwidth — and its energy cost of many spinning
//! disks — emerges from the composition, which is exactly the future-work
//! question the paper poses about file systems.

use greenness_faults::{FaultPlan, Site};
use greenness_platform::{Activity, HardwareSpec, Node, Phase, SimTime};
use greenness_storage::{FileSystem, FsConfig, FsError, MemBlockDevice};

use crate::error::ClusterError;
use crate::fabric::{sync_to, Fabric};

/// One object storage server: a node plus its filesystem.
#[derive(Debug)]
pub struct IoServer {
    /// The server's hardware clock + power timeline.
    pub node: Node,
    fs: FileSystem<MemBlockDevice>,
}

/// The parallel filesystem.
#[derive(Debug)]
pub struct ParallelFs {
    servers: Vec<IoServer>,
    stripe_bytes: usize,
    /// Per-server formatted capacity, for undersized-PFS diagnostics.
    capacity_bytes: u64,
    /// Bytes durably written so far (across all servers).
    written_bytes: u64,
    /// Active fault schedule (None = fault-free fast path).
    fault_plan: Option<FaultPlan>,
    /// Injected fsync faults observed across all servers.
    fsync_faults: u64,
    /// fsync retries that absorbed them.
    fsync_retries: u64,
}

impl ParallelFs {
    /// Build a PFS with `n_servers` object servers of the given hardware,
    /// each formatted with `capacity_bytes` of storage, striping at
    /// `stripe_bytes`.
    pub fn new(
        n_servers: usize,
        spec: &HardwareSpec,
        stripe_bytes: usize,
        capacity_bytes: u64,
    ) -> ParallelFs {
        assert!(n_servers >= 1, "need at least one I/O server");
        assert!(stripe_bytes > 0, "stripe size must be positive");
        let servers = (0..n_servers)
            .map(|_| IoServer {
                node: Node::new(spec.clone()),
                fs: FileSystem::format(
                    MemBlockDevice::with_capacity_bytes(capacity_bytes),
                    FsConfig::default(),
                ),
            })
            .collect();
        ParallelFs {
            servers,
            stripe_bytes,
            capacity_bytes,
            written_bytes: 0,
            fault_plan: None,
            fsync_faults: 0,
            fsync_retries: 0,
        }
    }

    /// Install a seeded fault schedule: each object server gets its own
    /// fsync injector (salted by server index, so schedules are independent
    /// and stable under server-count changes to *other* configs).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        for (i, s) in self.servers.iter_mut().enumerate() {
            s.fs.set_fault_injector(plan.map(|p| p.injector(Site::StorageFsync, i as u64)));
        }
    }

    /// Injected-fault counters so far: `(fsync faults, fsync retries)`.
    pub fn fault_counts(&self) -> (u64, u64) {
        (self.fsync_faults, self.fsync_retries)
    }

    /// Number of object servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The servers (for energy accounting).
    pub fn servers(&self) -> &[IoServer] {
        &self.servers
    }

    /// Stripe size in bytes.
    pub fn stripe_bytes(&self) -> usize {
        self.stripe_bytes
    }

    fn stripe_file(name: &str, stripe: usize) -> String {
        format!("{name}.s{stripe:05}")
    }

    /// Round-robin starting server for a file, so small files distribute
    /// across servers instead of all landing on server 0.
    fn start_server(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % self.servers.len() as u64) as usize
    }

    /// Map a server filesystem error into a cluster diagnostic. `NoSpace`
    /// becomes the undersized-PFS report (required vs configured capacity).
    fn wrap_fs_err(&self, file: &str, requested_bytes: u64, e: FsError) -> ClusterError {
        match e {
            FsError::NoSpace => ClusterError::PfsUndersized {
                file: file.to_string(),
                requested_bytes,
                written_bytes: self.written_bytes,
                capacity_bytes: self.capacity_bytes * self.servers.len() as u64,
                io_servers: self.servers.len(),
            },
            other => ClusterError::Fs {
                file: file.to_string(),
                source: other,
            },
        }
    }

    /// Striped durable write of `data` under `name` from `client`. The
    /// client ships each stripe over the fabric to its server, the server
    /// writes-and-fsyncs it, and the client returns once every stripe is
    /// durable (idling for stragglers). Injected fsync faults are absorbed
    /// by bounded retry with exponential backoff — the degraded server
    /// idles (real static energy) and recommits, slowing the run instead of
    /// aborting it.
    pub fn write(
        &mut self,
        client: &mut Node,
        fabric: &Fabric,
        name: &str,
        data: &[u8],
        phase: Phase,
    ) -> Result<(), ClusterError> {
        let n = self.servers.len();
        let start = self.start_server(name);
        let (max_retries, plan) = match self.fault_plan {
            Some(p) => (p.max_retries, p),
            None => (0, FaultPlan::quiet(0)),
        };
        for (k, chunk) in data.chunks(self.stripe_bytes).enumerate() {
            let idx = (start + k) % n;
            let fname = Self::stripe_file(name, k);
            let server = &mut self.servers[idx];
            fabric.transfer_reliable(client, &mut server.node, chunk.len() as u64, 1, phase)?;
            if let Err(e) = server.fs.write(&mut server.node, &fname, 0, chunk, phase) {
                return Err(self.wrap_fs_err(name, chunk.len() as u64, e));
            }
            let mut attempt = 0u32;
            loop {
                let server = &mut self.servers[idx];
                match server.fs.fsync(&mut server.node, &fname, phase) {
                    Ok(()) => break,
                    Err(FsError::TransientIo { .. }) if attempt < max_retries => {
                        let pause = plan.backoff_s(attempt);
                        server.node.execute(Activity::idle_secs(pause), phase);
                        self.fsync_faults += 1;
                        self.fsync_retries += 1;
                        attempt += 1;
                    }
                    Err(e) => {
                        if matches!(e, FsError::TransientIo { .. }) {
                            self.fsync_faults += 1;
                        }
                        return Err(self.wrap_fs_err(name, chunk.len() as u64, e));
                    }
                }
            }
            self.written_bytes += chunk.len() as u64;
        }
        // The write returns when the slowest server acknowledges.
        let done = self
            .servers
            .iter()
            .map(|s| s.node.now())
            .max()
            .unwrap_or(client.now());
        sync_to(client, done, phase);
        Ok(())
    }

    /// Striped read of `name` back to `client`: servers fetch their stripes
    /// concurrently (from the moment the request arrives), then stream them
    /// to the client in order.
    pub fn read(
        &mut self,
        client: &mut Node,
        fabric: &Fabric,
        name: &str,
        phase: Phase,
    ) -> Result<Vec<u8>, ClusterError> {
        let n = self.servers.len();
        let start = self.start_server(name);
        // Discover the stripes (metadata lookup, not charged).
        let mut stripes = Vec::new();
        loop {
            let k = stripes.len();
            let server = &self.servers[(start + k) % n];
            let fname = Self::stripe_file(name, k);
            if !server.fs.exists(&fname) {
                break;
            }
            stripes.push(fname);
        }
        if stripes.is_empty() {
            return Err(ClusterError::Fs {
                file: name.to_string(),
                source: FsError::NotFound(name.to_string()),
            });
        }
        // Phase A: every involved server services its reads starting at the
        // request time, in parallel with the others.
        let request_t = client.now();
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(stripes.len());
        for (k, fname) in stripes.iter().enumerate() {
            let server = &mut self.servers[(start + k) % n];
            sync_to(&mut server.node, request_t, phase);
            let step = server
                .fs
                .size(fname)
                .and_then(|size| server.fs.read(&mut server.node, fname, 0, size, phase));
            match step {
                Ok(bytes) => payloads.push(bytes),
                Err(e) => return Err(self.wrap_fs_err(name, 0, e)),
            }
        }
        // Phase B: stream stripes to the client in order (its NIC
        // serializes).
        let mut out = Vec::with_capacity(payloads.iter().map(Vec::len).sum());
        for (k, payload) in payloads.into_iter().enumerate() {
            let server = &mut self.servers[(start + k) % n];
            fabric.transfer_reliable(&mut server.node, client, payload.len() as u64, 1, phase)?;
            out.extend(payload);
        }
        Ok(out)
    }

    /// True if `name` has at least one stripe.
    pub fn exists(&self, name: &str) -> bool {
        self.servers[self.start_server(name)]
            .fs
            .exists(&Self::stripe_file(name, 0))
    }

    /// `sync; drop_caches` on every server (the paper's §IV-C discipline),
    /// then align all server clocks.
    pub fn sync_and_drop_all(&mut self, phase: Phase) {
        for s in &mut self.servers {
            s.fs.sync(&mut s.node, phase);
            s.fs.drop_caches();
        }
        let t = self
            .servers
            .iter()
            .map(|s| s.node.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        for s in &mut self.servers {
            sync_to(&mut s.node, t, phase);
        }
    }

    /// Sum of all server energies, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.node.timeline().total_energy_j())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Node, Fabric, ParallelFs) {
        let spec = HardwareSpec::table1();
        let client = Node::new(spec.clone());
        let pfs = ParallelFs::new(n, &spec, 128 * 1024, 256 * 1024 * 1024);
        (client, Fabric::ten_gbe(), pfs)
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 241) as u8).collect()
    }

    #[test]
    fn striped_write_read_round_trip() {
        let (mut client, fabric, mut pfs) = setup(4);
        let data = payload(1_000_000);
        pfs.write(&mut client, &fabric, "snap", &data, Phase::Write)
            .unwrap();
        pfs.sync_and_drop_all(Phase::CacheControl);
        let back = pfs.read(&mut client, &fabric, "snap", Phase::Read).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn stripes_spread_across_servers() {
        let (mut client, fabric, mut pfs) = setup(4);
        let data = payload(4 * 128 * 1024); // exactly one stripe per server
        pfs.write(&mut client, &fabric, "f", &data, Phase::Write)
            .unwrap();
        for s in pfs.servers() {
            assert!(
                s.node.timeline().total_energy_j() > 0.0,
                "an idle server got no stripe"
            );
        }
    }

    #[test]
    fn more_servers_cut_write_latency() {
        let data = payload(16 * 128 * 1024);
        let wall = |n: usize| {
            let (mut client, fabric, mut pfs) = setup(n);
            pfs.write(&mut client, &fabric, "f", &data, Phase::Write)
                .unwrap();
            client.now().as_secs_f64()
        };
        let one = wall(1);
        let four = wall(4);
        assert!(four < one / 2.0, "1 server: {one}s, 4 servers: {four}s");
    }

    #[test]
    fn more_servers_burn_more_idle_energy() {
        // The cluster trade-off: faster wall time, more spinning hardware.
        let data = payload(4 * 128 * 1024);
        let energy = |n: usize| {
            let (mut client, fabric, mut pfs) = setup(n);
            pfs.write(&mut client, &fabric, "f", &data, Phase::Write)
                .unwrap();
            // Normalize: bring all servers to the client's clock so each
            // configuration accounts the same wall window.
            for s in &mut pfs.servers {
                sync_to(&mut s.node, client.now(), Phase::Idle);
            }
            pfs.total_energy_j() / client.now().as_secs_f64()
        };
        assert!(
            energy(8) > energy(2),
            "aggregate PFS power should grow with servers"
        );
    }

    #[test]
    fn missing_file_is_an_error() {
        let (mut client, fabric, mut pfs) = setup(2);
        assert!(matches!(
            pfs.read(&mut client, &fabric, "ghost", Phase::Read),
            Err(ClusterError::Fs {
                source: FsError::NotFound(_),
                ..
            })
        ));
        assert!(!pfs.exists("ghost"));
    }

    #[test]
    fn undersized_pfs_reports_required_vs_configured() {
        let spec = HardwareSpec::table1();
        let mut client = Node::new(spec.clone());
        let fabric = Fabric::ten_gbe();
        // Two servers of 64 KiB each: a 1 MiB write cannot fit.
        let mut pfs = ParallelFs::new(2, &spec, 32 * 1024, 64 * 1024);
        let err = pfs
            .write(&mut client, &fabric, "big", &payload(1 << 20), Phase::Write)
            .unwrap_err();
        match err {
            ClusterError::PfsUndersized {
                capacity_bytes,
                io_servers,
                requested_bytes,
                ..
            } => {
                assert_eq!(capacity_bytes, 2 * 64 * 1024);
                assert_eq!(io_servers, 2);
                assert!(requested_bytes > 0);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn faulted_writes_recover_and_cost_more_time() {
        use greenness_faults::FaultPlan;
        let data = payload(16 * 128 * 1024);
        let wall = |plan: Option<FaultPlan>| {
            let (mut client, fabric, mut pfs) = setup(2);
            pfs.set_fault_plan(plan);
            pfs.write(&mut client, &fabric, "f", &data, Phase::Write)
                .unwrap();
            pfs.sync_and_drop_all(Phase::CacheControl);
            let back = pfs.read(&mut client, &fabric, "f", Phase::Read).unwrap();
            assert_eq!(back, data, "faulted write corrupted data");
            (client.now().as_secs_f64(), pfs.fault_counts())
        };
        let (clean_s, (f0, r0)) = wall(None);
        let (faulted_s, (f1, r1)) = wall(Some(FaultPlan {
            storage_fsync_rate: 0.3,
            fabric_fault_rate: 0.0,
            ..FaultPlan::with_seed(17)
        }));
        assert_eq!((f0, r0), (0, 0));
        assert!(f1 > 0, "rate 0.3 over 16 stripes should fire");
        assert_eq!(f1, r1, "every fault was absorbed by a retry");
        assert!(
            faulted_s > clean_s,
            "degraded run must be slower: {faulted_s} vs {clean_s}"
        );
    }

    #[test]
    fn client_waits_for_the_slowest_server() {
        let (mut client, fabric, mut pfs) = setup(3);
        let data = payload(9 * 128 * 1024);
        pfs.write(&mut client, &fabric, "f", &data, Phase::Write)
            .unwrap();
        let slowest = pfs.servers().iter().map(|s| s.node.now()).max().unwrap();
        assert!(client.now() >= slowest);
    }
}
