//! # greenness-cluster
//!
//! The multi-node extension the paper's §VI-A asks for: "evaluation on a
//! multi-node system to study the effect of network I/O in addition to disk
//! I/O" and "multi-node systems running parallel file systems to understand
//! the impact of file system on energy consumption".
//!
//! Substrate pieces:
//!
//! * [`fabric`] — the interconnect: point-to-point transfers that occupy
//!   both endpoints' NICs and keep their virtual clocks causally consistent;
//! * [`slab`] — a genuinely distributed heat solver: the global grid is
//!   decomposed into row slabs with ghost-row exchange each step, and the
//!   decomposed integration is *bit-identical* to the single-node solver
//!   (asserted by tests);
//! * [`pfs`] — a striped parallel filesystem over dedicated I/O server
//!   nodes, each running the full single-node storage stack (page cache,
//!   extents, journal barriers);
//! * [`pipeline`] — the distributed pipelines: post-processing writes slabs
//!   to the PFS and a visualization node reads them back; in-situ renders on
//!   the compute nodes and ships only images; in-transit stages slabs —
//!   optionally compressed on the wire — into dedicated staging nodes
//!   through bounded send queues, genuinely overlapping simulation with
//!   transfer and rendering (Bennett et al., the paper's ref [10]).
//!
//! Cluster-level accounting sums every node's timeline (compute + I/O
//! servers + viz/staging node); makespan is the latest clock. Load imbalance
//! and barrier waits therefore show up as *real static energy*, which is
//! exactly the effect the paper's single-node study could not see.

pub mod error;
pub mod fabric;
pub mod pfs;
pub mod pipeline;
pub mod slab;

pub use error::{ClusterError, FaultSummary};
pub use fabric::{barrier, sync_to, Fabric};
pub use pfs::ParallelFs;
pub use pipeline::{
    run_cluster, run_cluster_traced, run_cluster_with_faults, ClusterConfig, ClusterKind,
    ClusterReport, StagingConfig, WireCodec,
};
pub use slab::DecomposedSolver;
