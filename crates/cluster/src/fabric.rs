//! The cluster interconnect and clock coordination.
//!
//! Every node carries its own virtual clock; cross-node interactions must
//! keep them causally consistent. The two primitives here are all the
//! higher layers need: [`sync_to`] (idle a node forward to an instant —
//! waiting is *real static energy*, never free) and [`Fabric::transfer`]
//! (occupy both endpoints' NICs for the duration of a message).

use greenness_platform::{Activity, NetModel, Node, Phase, SimTime};

/// Idle `node` forward to instant `t` (no-op if already past it). The idle
/// span is charged at static power under the given phase — a node waiting at
/// a barrier or for a remote service burns real energy.
pub fn sync_to(node: &mut Node, t: SimTime, phase: Phase) {
    if t > node.now() {
        let wait = t.duration_since(node.now());
        node.execute(Activity::Idle { duration: wait }, phase);
    }
}

/// Advance every node to the latest clock among them (a barrier).
pub fn barrier(nodes: &mut [Node], phase: Phase) {
    let t = nodes.iter().map(Node::now).max().unwrap_or(SimTime::ZERO);
    for n in nodes {
        sync_to(n, t, phase);
    }
}

/// The interconnect between nodes.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Link model (bandwidth, per-message latency, NIC power).
    pub net: NetModel,
}

impl Fabric {
    /// A 10 GbE fabric.
    pub fn ten_gbe() -> Fabric {
        Fabric {
            net: NetModel::ten_gbe(),
        }
    }

    /// Move `bytes` from `src` to `dst` as `messages` messages. The transfer
    /// starts when both endpoints are ready (the earlier one idles) and
    /// occupies both NICs until it completes. Returns the completion instant.
    pub fn transfer(
        &self,
        src: &mut Node,
        dst: &mut Node,
        bytes: u64,
        messages: u32,
        phase: Phase,
    ) -> SimTime {
        let start = src.now().max(dst.now());
        sync_to(src, start, phase);
        sync_to(dst, start, phase);
        let a = src.execute(Activity::NetTransfer { bytes, messages }, phase);
        dst.execute(Activity::NetTransfer { bytes, messages }, phase);
        a.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::HardwareSpec;

    fn node() -> Node {
        Node::new(HardwareSpec::table1())
    }

    #[test]
    fn sync_to_idles_forward_only() {
        let mut n = node();
        sync_to(&mut n, SimTime::from_secs_f64(2.0), Phase::Idle);
        assert_eq!(n.now(), SimTime::from_secs_f64(2.0));
        // Syncing backwards is a no-op.
        sync_to(&mut n, SimTime::from_secs_f64(1.0), Phase::Idle);
        assert_eq!(n.now(), SimTime::from_secs_f64(2.0));
        // The wait was charged at static power.
        let e = n.timeline().total_energy_j();
        assert!((e - n.spec().static_w() * 2.0).abs() < 1e-6);
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let mut nodes = vec![node(), node(), node()];
        nodes[0].execute(Activity::idle_secs(1.0), Phase::Idle);
        nodes[2].execute(Activity::idle_secs(3.0), Phase::Idle);
        barrier(&mut nodes, Phase::Idle);
        for n in &nodes {
            assert_eq!(n.now(), SimTime::from_secs_f64(3.0));
        }
    }

    #[test]
    fn transfer_occupies_both_endpoints() {
        let fabric = Fabric::ten_gbe();
        let mut a = node();
        let mut b = node();
        b.execute(Activity::idle_secs(1.0), Phase::Idle); // receiver is "behind"
        let end = fabric.transfer(&mut a, &mut b, 100_000_000, 1, Phase::Network);
        // Start was at b's clock (1.0 s); 100 MB over 1 GB/s = 0.1 s.
        assert!((end.as_secs_f64() - 1.1).abs() < 1e-3, "end {end}");
        assert_eq!(a.now(), b.now());
        // Both NICs drew power.
        assert!(a.timeline().segments().iter().any(|s| s.draw.net_w > 0.0));
        assert!(b.timeline().segments().iter().any(|s| s.draw.net_w > 0.0));
    }

    #[test]
    fn empty_barrier_is_harmless() {
        barrier(&mut [], Phase::Idle);
    }
}
