//! The cluster interconnect and clock coordination.
//!
//! Every node carries its own virtual clock; cross-node interactions must
//! keep them causally consistent. The two primitives here are all the
//! higher layers need: [`sync_to`] (idle a node forward to an instant —
//! waiting is *real static energy*, never free) and [`Fabric::transfer`]
//! (occupy both endpoints' NICs for the duration of a message).

use std::cell::RefCell;

use greenness_faults::FaultInjector;
use greenness_platform::{Activity, NetModel, Node, Phase, SimTime};
use greenness_trace::Value;

use crate::error::ClusterError;

/// Idle `node` forward to instant `t` (no-op if already past it). The idle
/// span is charged at static power under the given phase — a node waiting at
/// a barrier or for a remote service burns real energy.
pub fn sync_to(node: &mut Node, t: SimTime, phase: Phase) {
    if t > node.now() {
        let wait = t.duration_since(node.now());
        node.execute(Activity::Idle { duration: wait }, phase);
    }
}

/// Advance every node to the latest clock among them (a barrier).
pub fn barrier(nodes: &mut [Node], phase: Phase) {
    let t = nodes.iter().map(Node::now).max().unwrap_or(SimTime::ZERO);
    for n in nodes {
        sync_to(n, t, phase);
    }
}

/// Record an injected fault on `node`'s tracer (counter + instant); a no-op
/// when tracing is off.
fn trace_fault(node: &Node, site: &'static str, mode: &'static str, attempt: u32, backoff_s: f64) {
    let tracer = node.tracer();
    let counter = match site {
        "staging.send" => "faults.staging.send",
        _ => "faults.fabric.transfer",
    };
    tracer.count(counter, 1);
    if tracer.is_on() {
        tracer.instant(
            node.now().as_nanos(),
            "fault.injected",
            vec![
                ("site", Value::from(site)),
                ("mode", Value::from(mode)),
                ("attempt", Value::from(attempt)),
                ("backoff_s", Value::from(backoff_s)),
            ],
        );
    }
}

/// Per-fabric fault bookkeeping: the schedule plus what it has done so far.
#[derive(Debug, Clone)]
struct FaultState {
    inj: FaultInjector,
    drops: u64,
    delays: u64,
    retries: u64,
}

/// The interconnect between nodes.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Link model (bandwidth, per-message latency, NIC power).
    pub net: NetModel,
    /// Seeded transfer-fault schedule; `None` is the fault-free fast path.
    /// Interior mutability because transfers take `&self` while both
    /// endpoint nodes are borrowed mutably (runs are single-threaded per
    /// fabric, so a `RefCell` suffices).
    faults: Option<RefCell<FaultState>>,
}

impl Fabric {
    /// A fabric over an arbitrary link model.
    pub fn new(net: NetModel) -> Fabric {
        Fabric { net, faults: None }
    }

    /// A 10 GbE fabric.
    pub fn ten_gbe() -> Fabric {
        Fabric {
            net: NetModel::ten_gbe(),
            faults: None,
        }
    }

    /// Install (or clear) a seeded transfer-fault schedule. Each
    /// [`Self::transfer_reliable`] attempt consumes one slot; a firing slot
    /// drops the payload in flight (entropy even) or delivers it late
    /// (entropy odd).
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector.map(|inj| {
            RefCell::new(FaultState {
                inj,
                drops: 0,
                delays: 0,
                retries: 0,
            })
        });
    }

    /// Injected-fault counters so far: `(drops, delays, retries)`.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        match &self.faults {
            Some(cell) => {
                let s = cell.borrow();
                (s.drops, s.delays, s.retries)
            }
            None => (0, 0, 0),
        }
    }

    /// [`Self::transfer`] hardened against the fault schedule: a dropped
    /// payload is retransmitted after exponential backoff (both endpoints
    /// idle — real static energy), a delayed one stalls both endpoints
    /// before delivery. Fails only when the retry budget is exhausted. With
    /// no schedule installed this is exactly one plain transfer.
    pub fn transfer_reliable(
        &self,
        src: &mut Node,
        dst: &mut Node,
        bytes: u64,
        messages: u32,
        phase: Phase,
    ) -> Result<SimTime, ClusterError> {
        let Some(cell) = &self.faults else {
            return Ok(self.transfer(src, dst, bytes, messages, phase));
        };
        let mut attempt = 0u32;
        loop {
            // Scoped borrow: the injector decision must not be held across
            // the node mutations below.
            let (fault, plan) = {
                let mut s = cell.borrow_mut();
                let f = s.inj.next();
                (f, *s.inj.plan())
            };
            match fault {
                None => return Ok(self.transfer(src, dst, bytes, messages, phase)),
                Some(entropy) if entropy & 1 == 1 => {
                    // Delayed delivery: congestion stalls both endpoints,
                    // then the payload lands intact.
                    cell.borrow_mut().delays += 1;
                    let pause = plan.backoff_s(0);
                    trace_fault(src, "fabric.transfer", "delay", attempt, pause);
                    src.execute(Activity::idle_secs(pause), phase);
                    dst.execute(Activity::idle_secs(pause), phase);
                    return Ok(self.transfer(src, dst, bytes, messages, phase));
                }
                Some(_) => {
                    // Dropped in flight: the transmission was paid for but
                    // the payload is gone; back off and retransmit.
                    cell.borrow_mut().drops += 1;
                    self.transfer(src, dst, bytes, messages, phase);
                    if attempt >= plan.max_retries {
                        // The terminal drop is still an injected fault: trace
                        // it before giving up so the journal's fault.injected
                        // instants stay in lockstep with the drop counter
                        // (no retry is scheduled, hence backoff 0).
                        trace_fault(src, "fabric.transfer", "drop", attempt, 0.0);
                        return Err(ClusterError::FabricExhausted {
                            bytes,
                            attempts: attempt + 1,
                        });
                    }
                    let pause = plan.backoff_s(attempt);
                    trace_fault(src, "fabric.transfer", "drop", attempt, pause);
                    src.execute(Activity::idle_secs(pause), phase);
                    dst.execute(Activity::idle_secs(pause), phase);
                    cell.borrow_mut().retries += 1;
                    src.tracer().count("retries.fabric.transfer", 1);
                    attempt += 1;
                }
            }
        }
    }

    /// One-sided staged send: only the *sender's* NIC is occupied, and the
    /// payload's arrival instant (the sender's clock after transmission) is
    /// returned without touching the receiver. This is what lets a staging
    /// node drain transfers at its own clock while compute advances — the
    /// receiver later calls [`Self::recv`] once it has idled to the arrival.
    ///
    /// Hardened against the same fault schedule as
    /// [`Self::transfer_reliable`]: a drop retransmits from the still-live
    /// send buffer after backoff (sender-only idle — the receiver never
    /// learns the attempt happened), a delay stalls the sender before the
    /// wire. Fails only when the retry budget is exhausted.
    pub fn send_reliable(
        &self,
        src: &mut Node,
        bytes: u64,
        messages: u32,
        phase: Phase,
    ) -> Result<SimTime, ClusterError> {
        let Some(cell) = &self.faults else {
            return Ok(self.send(src, bytes, messages, phase));
        };
        let mut attempt = 0u32;
        loop {
            let (fault, plan) = {
                let mut s = cell.borrow_mut();
                let f = s.inj.next();
                (f, *s.inj.plan())
            };
            match fault {
                None => return Ok(self.send(src, bytes, messages, phase)),
                Some(entropy) if entropy & 1 == 1 => {
                    // Congestion on the staged path: the sender stalls, then
                    // the payload lands intact.
                    cell.borrow_mut().delays += 1;
                    let pause = plan.backoff_s(0);
                    trace_fault(src, "staging.send", "delay", attempt, pause);
                    src.execute(Activity::idle_secs(pause), phase);
                    return Ok(self.send(src, bytes, messages, phase));
                }
                Some(_) => {
                    // Dropped staged slab: the transmission was paid for, but
                    // the send buffer is still live, so back off and
                    // retransmit from it.
                    cell.borrow_mut().drops += 1;
                    self.send(src, bytes, messages, phase);
                    if attempt >= plan.max_retries {
                        trace_fault(src, "staging.send", "drop", attempt, 0.0);
                        return Err(ClusterError::FabricExhausted {
                            bytes,
                            attempts: attempt + 1,
                        });
                    }
                    let pause = plan.backoff_s(attempt);
                    trace_fault(src, "staging.send", "drop", attempt, pause);
                    src.execute(Activity::idle_secs(pause), phase);
                    cell.borrow_mut().retries += 1;
                    src.tracer().count("retries.staging.send", 1);
                    attempt += 1;
                }
            }
        }
    }

    /// The sender half of a staged transfer: occupy `src`'s NIC for the
    /// message and return the arrival instant (= the sender's clock when the
    /// last byte leaves; wire latency is part of the NIC activity).
    fn send(&self, src: &mut Node, bytes: u64, messages: u32, phase: Phase) -> SimTime {
        let a = src.execute(Activity::NetTransfer { bytes, messages }, phase);
        a.end()
    }

    /// The receiver half of a staged transfer: occupy `dst`'s NIC for the
    /// message at its current clock. Callers [`sync_to`] the arrival instant
    /// first; the split keeps the receive charge honest without coupling the
    /// two endpoints' clocks. Returns the receive-completion instant.
    pub fn recv(&self, dst: &mut Node, bytes: u64, messages: u32, phase: Phase) -> SimTime {
        let a = dst.execute(Activity::NetTransfer { bytes, messages }, phase);
        a.end()
    }

    /// Move `bytes` from `src` to `dst` as `messages` messages. The transfer
    /// starts when both endpoints are ready (the earlier one idles) and
    /// occupies both NICs until it completes. Returns the completion instant.
    pub fn transfer(
        &self,
        src: &mut Node,
        dst: &mut Node,
        bytes: u64,
        messages: u32,
        phase: Phase,
    ) -> SimTime {
        let start = src.now().max(dst.now());
        sync_to(src, start, phase);
        sync_to(dst, start, phase);
        let a = src.execute(Activity::NetTransfer { bytes, messages }, phase);
        dst.execute(Activity::NetTransfer { bytes, messages }, phase);
        a.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_platform::HardwareSpec;

    fn node() -> Node {
        Node::new(HardwareSpec::table1())
    }

    #[test]
    fn sync_to_idles_forward_only() {
        let mut n = node();
        sync_to(&mut n, SimTime::from_secs_f64(2.0), Phase::Idle);
        assert_eq!(n.now(), SimTime::from_secs_f64(2.0));
        // Syncing backwards is a no-op.
        sync_to(&mut n, SimTime::from_secs_f64(1.0), Phase::Idle);
        assert_eq!(n.now(), SimTime::from_secs_f64(2.0));
        // The wait was charged at static power.
        let e = n.timeline().total_energy_j();
        assert!((e - n.spec().static_w() * 2.0).abs() < 1e-6);
    }

    #[test]
    fn barrier_aligns_all_clocks() {
        let mut nodes = vec![node(), node(), node()];
        nodes[0].execute(Activity::idle_secs(1.0), Phase::Idle);
        nodes[2].execute(Activity::idle_secs(3.0), Phase::Idle);
        barrier(&mut nodes, Phase::Idle);
        for n in &nodes {
            assert_eq!(n.now(), SimTime::from_secs_f64(3.0));
        }
    }

    #[test]
    fn transfer_occupies_both_endpoints() {
        let fabric = Fabric::ten_gbe();
        let mut a = node();
        let mut b = node();
        b.execute(Activity::idle_secs(1.0), Phase::Idle); // receiver is "behind"
        let end = fabric.transfer(&mut a, &mut b, 100_000_000, 1, Phase::Network);
        // Start was at b's clock (1.0 s); 100 MB over 1 GB/s = 0.1 s.
        assert!((end.as_secs_f64() - 1.1).abs() < 1e-3, "end {end}");
        assert_eq!(a.now(), b.now());
        // Both NICs drew power.
        assert!(a.timeline().segments().iter().any(|s| s.draw.net_w > 0.0));
        assert!(b.timeline().segments().iter().any(|s| s.draw.net_w > 0.0));
    }

    #[test]
    fn empty_barrier_is_harmless() {
        barrier(&mut [], Phase::Idle);
    }
}
