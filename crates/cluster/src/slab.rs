//! Domain-decomposed heat solver: row slabs with ghost-row exchange.
//!
//! The global grid is split into horizontal slabs, one per compute node.
//! Each timestep the slabs exchange their boundary rows (ghost rows), then
//! update independently — the standard 1-D decomposition of a 5-point
//! stencil. The update expression, boundary handling, and source application
//! replicate [`HeatSolver`](greenness_heatsim::HeatSolver) *operation for
//! operation*, so the decomposed run is bit-identical to the single-node
//! run — the strongest possible correctness statement for the distributed
//! solver, and the tests assert it.

use greenness_heatsim::{Boundary, Grid, SolverConfig};
use serde::{Deserialize, Serialize};

/// Row-range metadata for one slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlabInfo {
    /// First global row this slab owns.
    pub j0: usize,
    /// Rows owned.
    pub rows: usize,
    /// Cells owned (`rows × nx`).
    pub cells: u64,
}

#[derive(Debug, Clone)]
struct Slab {
    j0: usize,
    rows: usize,
    /// `(rows + 2) × nx`, rows 0 and rows+1 are ghosts.
    data: Vec<f64>,
    scratch: Vec<f64>,
}

/// Per-step ghost-exchange traffic summary, for the fabric to charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostTraffic {
    /// Bytes each neighbor pair sends in each direction per step.
    pub bytes_per_direction: u64,
    /// Number of neighbor pairs.
    pub pairs: usize,
}

/// The decomposed solver: the same physics as `HeatSolver`, split over
/// `parts` slabs.
#[derive(Debug, Clone)]
pub struct DecomposedSolver {
    config: SolverConfig,
    nx: usize,
    ny: usize,
    slabs: Vec<Slab>,
    steps_taken: u64,
}

impl DecomposedSolver {
    /// Decompose `initial` into `parts` row slabs. Panics if the CFL
    /// condition fails, a slab would own fewer than 3 rows, or a source is
    /// out of range — the same contracts as the single-node solver.
    pub fn new(initial: &Grid, config: SolverConfig, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one slab");
        let nx = initial.nx();
        let ny = initial.ny();
        assert!(
            ny / parts >= 3,
            "each slab needs at least 3 rows ({ny} rows / {parts} parts)"
        );
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let cfl = config.alpha * config.dt * (1.0 / (dx * dx) + 1.0 / (dy * dy));
        assert!(cfl <= 0.5 + 1e-12, "FTCS unstable: {cfl:.3} > 0.5");
        for s in &config.sources {
            assert!(s.i < nx && s.j < ny, "source outside grid");
        }
        // Distribute remainder rows to the leading slabs.
        let base = ny / parts;
        let extra = ny % parts;
        let mut slabs = Vec::with_capacity(parts);
        let mut j0 = 0usize;
        for k in 0..parts {
            let rows = base + usize::from(k < extra);
            let mut data = vec![0.0; (rows + 2) * nx];
            for r in 0..rows {
                for i in 0..nx {
                    data[(r + 1) * nx + i] = initial.at(i, j0 + r);
                }
            }
            slabs.push(Slab {
                j0,
                rows,
                scratch: data.clone(),
                data,
            });
            j0 += rows;
        }
        DecomposedSolver {
            config,
            nx,
            ny,
            slabs,
            steps_taken: 0,
        }
    }

    /// Number of slabs.
    pub fn parts(&self) -> usize {
        self.slabs.len()
    }

    /// Grid extent.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Metadata for slab `k`.
    pub fn slab_info(&self, k: usize) -> SlabInfo {
        let s = &self.slabs[k];
        SlabInfo {
            j0: s.j0,
            rows: s.rows,
            cells: (s.rows * self.nx) as u64,
        }
    }

    /// The ghost traffic each step generates, for fabric accounting.
    pub fn ghost_traffic(&self) -> GhostTraffic {
        GhostTraffic {
            bytes_per_direction: (self.nx * std::mem::size_of::<f64>()) as u64,
            pairs: self.slabs.len().saturating_sub(1),
        }
    }

    /// Slab `k`'s owned rows as serialized little-endian `f64`s (its
    /// snapshot contribution).
    pub fn slab_bytes(&self, k: usize) -> Vec<u8> {
        let s = &self.slabs[k];
        let mut out = Vec::with_capacity(s.rows * self.nx * 8);
        for r in 0..s.rows {
            for i in 0..self.nx {
                out.extend_from_slice(&s.data[(r + 1) * self.nx + i].to_le_bytes());
            }
        }
        out
    }

    /// Slab `k`'s owned rows as a standalone [`Grid`] (for per-node in-situ
    /// rendering).
    pub fn slab_grid(&self, k: usize) -> Grid {
        let s = &self.slabs[k];
        let mut g = Grid::zeros(self.nx, s.rows);
        for r in 0..s.rows {
            for i in 0..self.nx {
                g.set(i, r, s.data[(r + 1) * self.nx + i]);
            }
        }
        g
    }

    /// Reassemble the global field.
    pub fn assemble(&self) -> Grid {
        let mut g = Grid::zeros(self.nx, self.ny);
        for s in &self.slabs {
            for r in 0..s.rows {
                for i in 0..self.nx {
                    g.set(i, s.j0 + r, s.data[(r + 1) * self.nx + i]);
                }
            }
        }
        g
    }

    /// Fill every slab's ghost rows from its neighbors (the communication
    /// the fabric charges via [`Self::ghost_traffic`]).
    fn exchange_ghosts(&mut self) {
        let nx = self.nx;
        for k in 0..self.slabs.len() {
            // Lower ghost (row 0) ← last owned row of the slab below.
            if k > 0 {
                let (below, cur) = {
                    let (a, b) = self.slabs.split_at_mut(k);
                    (&a[k - 1], &mut b[0])
                };
                let src = below.rows * nx; // last owned row (index rows, 1-based storage)
                for i in 0..nx {
                    cur.data[i] = below.data[src + i];
                }
            }
            // Upper ghost (row rows+1) ← first owned row of the slab above.
            if k + 1 < self.slabs.len() {
                let (cur, above) = {
                    let (a, b) = self.slabs.split_at_mut(k + 1);
                    (&mut a[k], &b[0])
                };
                let dst = (cur.rows + 1) * nx;
                for i in 0..nx {
                    cur.data[dst + i] = above.data[nx + i];
                }
            }
        }
    }

    /// Advance one timestep (exchange ghosts, update every slab, apply
    /// sources, swap).
    pub fn step(&mut self) {
        self.exchange_ghosts();
        let nx = self.nx;
        let ny = self.ny;
        let dx = 1.0 / nx as f64;
        let dy = 1.0 / ny as f64;
        let rx = self.config.alpha * self.config.dt / (dx * dx);
        let ry = self.config.alpha * self.config.dt / (dy * dy);
        let boundary = self.config.boundary;

        for s in &mut self.slabs {
            let j0 = s.j0 as isize;
            let rows = s.rows;
            let prev = &s.data;
            // Sample global coordinates through slab storage, replicating
            // HeatSolver::step's ghost logic exactly.
            let sample = |i: isize, jg: isize| -> f64 {
                let in_bounds = i >= 0 && jg >= 0 && i < nx as isize && jg < ny as isize;
                if in_bounds {
                    // Owned row or neighbor ghost row.
                    let local = (jg - j0 + 1) as usize;
                    debug_assert!(local <= rows + 1);
                    prev[local * nx + i as usize]
                } else {
                    let ic = i.clamp(0, nx as isize - 1) as usize;
                    let jc = jg.clamp(0, ny as isize - 1);
                    let local = (jc - j0 + 1) as usize;
                    let u = prev[local * nx + ic];
                    match boundary {
                        Boundary::Dirichlet(v) => 2.0 * v - u,
                        Boundary::Neumann => u,
                    }
                }
            };
            for r in 0..rows {
                let jg = j0 + r as isize;
                for i_us in 0..nx {
                    let i = i_us as isize;
                    let u = sample(i, jg);
                    s.scratch[(r + 1) * nx + i_us] = u
                        + rx * (sample(i + 1, jg) - 2.0 * u + sample(i - 1, jg))
                        + ry * (sample(i, jg + 1) - 2.0 * u + sample(i, jg - 1));
                }
            }
        }
        for s in &mut self.slabs {
            std::mem::swap(&mut s.data, &mut s.scratch);
        }
        // Point sources, applied by the owning slab (after the swap, exactly
        // as the single-node solver applies them to the new level).
        for src in &self.config.sources {
            for s in &mut self.slabs {
                if src.j >= s.j0 && src.j < s.j0 + s.rows {
                    let local = (src.j - s.j0 + 1) * self.nx + src.i;
                    s.data[local] += src.rate * self.config.dt;
                }
            }
        }
        self.steps_taken += 1;
    }

    /// Advance `n` timesteps.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenness_heatsim::{HeatSolver, PointSource};

    fn initial(n: usize) -> Grid {
        Grid::from_fn(n, n, |x, y| (x * 7.0).sin() * (y * 3.0).cos() + 0.3 * x)
    }

    fn config() -> SolverConfig {
        SolverConfig {
            alpha: 1.0e-4,
            dt: 0.05,
            boundary: Boundary::Dirichlet(0.5),
            sources: vec![PointSource {
                i: 5,
                j: 17,
                rate: 2.0,
            }],
        }
    }

    #[test]
    fn decomposed_matches_single_node_bitwise() {
        for parts in [1usize, 2, 3, 5] {
            let mut reference = HeatSolver::new(initial(30), config()).expect("stable config");
            let mut decomposed = DecomposedSolver::new(&initial(30), config(), parts);
            reference.run(40);
            decomposed.run(40);
            assert_eq!(
                decomposed.assemble().as_slice(),
                reference.grid().as_slice(),
                "bitwise divergence with {parts} slabs"
            );
        }
    }

    #[test]
    fn neumann_decomposition_matches_too() {
        let cfg = SolverConfig {
            boundary: Boundary::Neumann,
            sources: vec![PointSource {
                i: 10,
                j: 3,
                rate: 5.0,
            }],
            ..config()
        };
        let mut reference = HeatSolver::new(initial(24), cfg.clone()).expect("stable config");
        let mut decomposed = DecomposedSolver::new(&initial(24), cfg, 4);
        reference.run(60);
        decomposed.run(60);
        assert_eq!(
            decomposed.assemble().as_slice(),
            reference.grid().as_slice()
        );
    }

    #[test]
    fn uneven_row_counts_are_distributed() {
        let d = DecomposedSolver::new(&initial(31), config(), 4);
        let total: usize = (0..4).map(|k| d.slab_info(k).rows).sum();
        assert_eq!(total, 31);
        // Leading slabs absorb the remainder: 8, 8, 8, 7.
        assert_eq!(d.slab_info(0).rows, 8);
        assert_eq!(d.slab_info(3).rows, 7);
        // Contiguous coverage.
        assert_eq!(d.slab_info(1).j0, 8);
        assert_eq!(d.slab_info(3).j0, 24);
    }

    #[test]
    fn slab_bytes_concatenate_to_the_snapshot() {
        let mut d = DecomposedSolver::new(&initial(24), config(), 3);
        d.run(5);
        let mut cat = Vec::new();
        for k in 0..3 {
            cat.extend(d.slab_bytes(k));
        }
        assert_eq!(cat, d.assemble().to_bytes());
    }

    #[test]
    fn slab_grid_matches_owned_rows() {
        let d = DecomposedSolver::new(&initial(24), config(), 2);
        let g = d.slab_grid(1);
        let info = d.slab_info(1);
        assert_eq!(g.ny(), info.rows);
        let full = d.assemble();
        for r in 0..info.rows {
            for i in 0..24 {
                assert_eq!(g.at(i, r), full.at(i, info.j0 + r));
            }
        }
    }

    #[test]
    fn ghost_traffic_accounting() {
        let d = DecomposedSolver::new(&initial(24), config(), 4);
        let t = d.ghost_traffic();
        assert_eq!(t.pairs, 3);
        assert_eq!(t.bytes_per_direction, 24 * 8);
    }

    #[test]
    #[should_panic(expected = "at least 3 rows")]
    fn over_decomposition_is_rejected() {
        let _ = DecomposedSolver::new(&initial(12), config(), 8);
    }
}
