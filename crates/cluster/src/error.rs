//! Structured errors for distributed runs.
//!
//! A misconfigured or degraded cluster must report *what* went wrong and
//! *what would fix it* — never panic mid-run (the binaries print these and
//! exit 1).

use greenness_storage::FsError;

/// Why a distributed run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The parallel filesystem filled up mid-run: the workload needs more
    /// capacity than the PFS was configured with.
    PfsUndersized {
        /// The file whose write hit the wall.
        file: String,
        /// Bytes this write requested.
        requested_bytes: u64,
        /// Bytes already durably written before it (so the run needs at
        /// least `written + requested`).
        written_bytes: u64,
        /// Total configured capacity across all object servers.
        capacity_bytes: u64,
        /// Object server count behind that capacity.
        io_servers: usize,
    },
    /// A filesystem operation on an I/O server failed (including a
    /// transient-fault retry budget exhausted on a persistently bad disk).
    Fs {
        /// The PFS file involved.
        file: String,
        /// The underlying filesystem error.
        source: FsError,
    },
    /// A fabric transfer was dropped more times than the retry budget
    /// allows — the link (or its peer) is effectively down.
    FabricExhausted {
        /// Payload size of the failing transfer.
        bytes: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A staged slab could not be wire-encoded (misaligned or non-finite
    /// payload — indicates solver corruption, not a codec defect).
    WireCodec {
        /// Timestep of the failing stage.
        step: u64,
        /// Sending compute node.
        node: usize,
        /// The codec's reason.
        reason: String,
    },
    /// A snapshot read back from the PFS does not have the configured grid
    /// shape (torn or corrupt data that checksums could not repair).
    SnapshotShape {
        /// The snapshot's base name.
        file: String,
        /// Bytes actually assembled.
        got_bytes: usize,
        /// Expected grid extent.
        want: (usize, usize),
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::PfsUndersized {
                file,
                requested_bytes,
                written_bytes,
                capacity_bytes,
                io_servers,
            } => write!(
                f,
                "PFS undersized: writing {file} ({requested_bytes} B) after {written_bytes} B \
                 already written, but {io_servers} server(s) provide only {capacity_bytes} B — \
                 the run needs at least {} B",
                written_bytes + requested_bytes
            ),
            ClusterError::Fs { file, source } => {
                write!(f, "I/O server failed on {file}: {source}")
            }
            ClusterError::FabricExhausted { bytes, attempts } => write!(
                f,
                "fabric transfer of {bytes} B dropped {attempts} times; retry budget exhausted"
            ),
            ClusterError::WireCodec { step, node, reason } => write!(
                f,
                "wire-encoding the staged slab from node {node} at step {step} failed: {reason}"
            ),
            ClusterError::SnapshotShape {
                file,
                got_bytes,
                want,
            } => write!(
                f,
                "snapshot {file} read back {got_bytes} B, which is not a {}x{} grid",
                want.0, want.1
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Degraded-mode accounting for one faulted run: everything the fault layer
/// injected and everything the retry layers absorbed. Reported next to the
/// [`crate::ClusterReport`] (not inside it, so fault-free report bytes stay
/// identical).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Injected fsync faults across all I/O servers.
    pub storage_faults: u64,
    /// fsync retries that recovered them.
    pub storage_retries: u64,
    /// Fabric transfers dropped in flight.
    pub fabric_drops: u64,
    /// Fabric transfers delivered late.
    pub fabric_delays: u64,
    /// Fabric retransmissions.
    pub fabric_retries: u64,
    /// Staging-node frame renders torn mid-flight and redone from the
    /// still-assembled slabs (output is never corrupted, only re-rendered).
    pub staging_torn_renders: u64,
}

impl FaultSummary {
    /// Total injected faults.
    pub fn total_faults(&self) -> u64 {
        self.storage_faults + self.fabric_drops + self.fabric_delays + self.staging_torn_renders
    }

    /// One-line degraded-mode report.
    pub fn describe(&self) -> String {
        format!(
            "faults injected: {} (storage {}, fabric drops {}, fabric delays {}, \
             torn staging renders {}); retries: storage {}, fabric {}",
            self.total_faults(),
            self.storage_faults,
            self.fabric_drops,
            self.fabric_delays,
            self.staging_torn_renders,
            self.storage_retries,
            self.fabric_retries
        )
    }
}
