//! Distributed visualization pipelines over the cluster substrate.
//!
//! The single-node story of the paper, replayed at cluster scale:
//!
//! * **post-processing**: compute nodes advance their slabs (ghost exchange
//!   over the fabric, barrier per step) and write raw slabs to the parallel
//!   filesystem every I/O step; afterwards a visualization node reads every
//!   snapshot back and renders it;
//! * **in-situ**: compute nodes render their own slabs and write only PPM
//!   images to the PFS;
//! * **in-transit**: compute nodes stream raw slabs over the fabric to the
//!   visualization node, which renders them while simulation continues —
//!   the Bennett et al. staging organization (paper ref [10]).
//!
//! Energy is accounted across *every* node (compute + I/O servers + viz);
//! the run ends at the makespan, and nodes that finish early idle — at real
//! static power — until it, as in any space-shared allocation.

use greenness_faults::{FaultPlan, Site};
use greenness_heatsim::{Grid, SimCostModel, SolverConfig};
use greenness_platform::{HardwareSpec, Node, Phase, SimTime};
use greenness_viz::{encode_ppm, render_field, RenderCostModel, RenderOptions};
use serde::{Deserialize, Serialize};

use crate::error::{ClusterError, FaultSummary};
use crate::fabric::{barrier, sync_to, Fabric};
use crate::pfs::ParallelFs;
use crate::slab::DecomposedSolver;

/// Which distributed pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterKind {
    /// Write raw slabs to the PFS; visualize later on a viz node.
    PostProcessing,
    /// Render on the compute nodes; persist only images.
    InSitu,
    /// Stage raw slabs to the viz node over the fabric.
    InTransit,
}

/// Cluster workload description.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Compute nodes (= solver slabs).
    pub compute_nodes: usize,
    /// PFS object servers.
    pub io_servers: usize,
    /// Global grid extent.
    pub grid_nx: usize,
    /// Global grid extent.
    pub grid_ny: usize,
    /// Simulation timesteps.
    pub timesteps: u64,
    /// I/O + visualization every `io_interval` steps.
    pub io_interval: u64,
    /// PFS stripe size, bytes.
    pub stripe_bytes: usize,
    /// Solver physics.
    pub solver: SolverConfig,
    /// Per-node compute cost model.
    pub sim_cost: SimCostModel,
    /// Rendering cost model.
    pub render_cost: RenderCostModel,
    /// Rendering controls (full-frame; slab renders scale by row share).
    pub render: RenderOptions,
    /// Node hardware (all nodes identical).
    pub spec: HardwareSpec,
}

impl ClusterConfig {
    /// A 4-compute-node, 2-server cluster running the case-study-1 workload
    /// at reduced grid scale (128×128; per-step modeled work matches the
    /// full-scale calibration via the area-scaled cost constants).
    pub fn small(compute_nodes: usize, io_servers: usize) -> ClusterConfig {
        let scale = (512.0 * 512.0) / (128.0 * 128.0);
        let mut sim_cost = SimCostModel::default();
        // Per-*cluster* step work equals one full-scale step; each node
        // handles 1/compute_nodes of it on its own 16 cores.
        sim_cost.flops_per_cell_update *= scale;
        sim_cost.dram_bytes_per_cell_update *= scale;
        let mut render_cost = RenderCostModel::default();
        render_cost.flops_per_pixel *= scale;
        render_cost.dram_bytes_per_pixel *= scale;
        ClusterConfig {
            compute_nodes,
            io_servers,
            grid_nx: 128,
            grid_ny: 128,
            timesteps: 10,
            io_interval: 1,
            stripe_bytes: 128 * 1024,
            solver: default_solver(128, 128),
            sim_cost,
            render_cost,
            render: RenderOptions {
                width: 128,
                height: 128,
                range: Some((0.0, 1.0)),
                ..Default::default()
            },
            spec: HardwareSpec::table1(),
        }
    }

    /// Total useful work (cell updates).
    pub fn work_units(&self) -> f64 {
        (self.grid_nx * self.grid_ny) as f64 * self.timesteps as f64
    }
}

/// A CFL-stable configuration matching `greenness_core`'s defaults.
fn default_solver(nx: usize, ny: usize) -> SolverConfig {
    let limit = 0.5 / ((nx * nx + ny * ny) as f64);
    let alpha = 1.0e-4;
    SolverConfig {
        alpha,
        dt: 0.8 * limit / alpha,
        boundary: greenness_heatsim::Boundary::Neumann,
        sources: vec![greenness_heatsim::PointSource {
            i: nx / 3,
            j: ny / 3,
            rate: 40.0 / (0.8 * limit / alpha) / 50.0,
        }],
    }
}

/// Results of one distributed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Which pipeline ran.
    pub kind: ClusterKind,
    /// Wall time to the last node's completion, seconds.
    pub makespan_s: f64,
    /// Energy summed over every node, joules.
    pub total_energy_j: f64,
    /// `total_energy / makespan`, watts.
    pub average_power_w: f64,
    /// Energy of the compute nodes alone, joules.
    pub compute_energy_j: f64,
    /// Energy of the PFS servers alone, joules.
    pub io_energy_j: f64,
    /// Energy of the visualization/staging node alone, joules.
    pub viz_energy_j: f64,
    /// Raw bytes shipped into the PFS or over the fabric to staging.
    pub bytes_out: u64,
    /// Post-processing only: all snapshots read back intact.
    pub verified: bool,
    /// Useful work (cell updates).
    pub work_units: f64,
}

impl ClusterReport {
    /// Energy efficiency, work per joule.
    pub fn efficiency(&self) -> f64 {
        if self.total_energy_j <= 0.0 {
            0.0
        } else {
            self.work_units / self.total_energy_j
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run the distributed pipeline described by `cfg`, fault-free.
pub fn run_cluster(kind: ClusterKind, cfg: &ClusterConfig) -> Result<ClusterReport, ClusterError> {
    run_cluster_with_faults(kind, cfg, None).map(|(report, _)| report)
}

/// Run the distributed pipeline under an optional seeded fault plan. A
/// degraded run completes slower (retries and backoff are real idle time —
/// static energy in every node's timeline) and reports what it absorbed in
/// the [`FaultSummary`]; only an exhausted retry budget or a genuinely
/// undersized PFS aborts the run with a structured [`ClusterError`].
pub fn run_cluster_with_faults(
    kind: ClusterKind,
    cfg: &ClusterConfig,
    faults: Option<FaultPlan>,
) -> Result<(ClusterReport, FaultSummary), ClusterError> {
    let mut fabric = Fabric::ten_gbe();
    if let Some(plan) = faults {
        fabric.set_fault_injector(Some(plan.injector(Site::FabricTransfer, 0)));
    }
    let fabric = fabric;
    let mut compute: Vec<Node> = (0..cfg.compute_nodes)
        .map(|_| Node::new(cfg.spec.clone()))
        .collect();
    let mut viz = Node::new(cfg.spec.clone());
    let mut pfs = ParallelFs::new(
        cfg.io_servers,
        &cfg.spec,
        cfg.stripe_bytes,
        1024 * 1024 * 1024,
    );
    pfs.set_fault_plan(faults);

    let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    });
    let mut solver = DecomposedSolver::new(&initial, cfg.solver.clone(), cfg.compute_nodes);
    let ghost = solver.ghost_traffic();
    let pixels = (cfg.render.width * cfg.render.height) as u64;

    let mut bytes_out = 0u64;
    let mut verified = true;
    let mut checksums: Vec<(u64, Vec<u64>)> = Vec::new(); // (step, per-slab fnv)

    for step in 1..=cfg.timesteps {
        // The real distributed physics.
        solver.step();
        // Each node charges its slab's updates...
        for (k, node) in compute.iter_mut().enumerate() {
            let cells = solver.slab_info(k).cells;
            node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        }
        // ...and each neighbor pair exchanges ghost rows, both directions.
        for k in 0..ghost.pairs {
            let (a, b) = compute.split_at_mut(k + 1);
            let (lo, hi) = (&mut a[k], &mut b[0]);
            fabric.transfer_reliable(lo, hi, ghost.bytes_per_direction, 1, Phase::Network)?;
            fabric.transfer_reliable(hi, lo, ghost.bytes_per_direction, 1, Phase::Network)?;
        }
        barrier(&mut compute, Phase::Idle);

        if step % cfg.io_interval != 0 {
            continue;
        }
        match kind {
            ClusterKind::PostProcessing => {
                let mut sums = Vec::with_capacity(cfg.compute_nodes);
                for (k, node) in compute.iter_mut().enumerate() {
                    let bytes = solver.slab_bytes(k);
                    sums.push(fnv1a(&bytes));
                    bytes_out += bytes.len() as u64;
                    pfs.write(
                        node,
                        &fabric,
                        &format!("snap{step:04}.n{k:02}"),
                        &bytes,
                        Phase::Write,
                    )?;
                }
                checksums.push((step, sums));
            }
            ClusterKind::InSitu => {
                for (k, node) in compute.iter_mut().enumerate() {
                    let info = solver.slab_info(k);
                    // Render this node's share of the frame.
                    let share = info.rows as f64 / cfg.grid_ny as f64;
                    node.execute(
                        cfg.render_cost.activity((pixels as f64 * share) as u64),
                        Phase::Visualization,
                    );
                    let slab_render = render_field(
                        &solver.slab_grid(k),
                        &RenderOptions {
                            height: ((cfg.render.height as f64 * share) as usize).max(1),
                            ..cfg.render
                        },
                    );
                    let ppm = encode_ppm(&slab_render);
                    bytes_out += ppm.len() as u64;
                    pfs.write(
                        node,
                        &fabric,
                        &format!("frame{step:04}.n{k:02}.ppm"),
                        &ppm,
                        Phase::ImageWrite,
                    )?;
                }
            }
            ClusterKind::InTransit => {
                for (k, node) in compute.iter_mut().enumerate() {
                    let bytes = solver.slab_bytes(k);
                    bytes_out += bytes.len() as u64;
                    let messages = bytes.len().div_ceil(cfg.stripe_bytes) as u32;
                    fabric.transfer_reliable(
                        node,
                        &mut viz,
                        bytes.len() as u64,
                        messages,
                        Phase::Network,
                    )?;
                }
                // The staging node renders the assembled frame while the
                // compute nodes move on, and persists the image to the PFS
                // (its only durable output, as in the in-situ pipeline).
                viz.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                let frame = render_field(&solver.assemble(), &cfg.render);
                let ppm = encode_ppm(&frame);
                pfs.write(
                    &mut viz,
                    &fabric,
                    &format!("frame{step:04}.ppm"),
                    &ppm,
                    Phase::ImageWrite,
                )?;
            }
        }
        barrier(&mut compute, Phase::Idle);
    }

    pfs.sync_and_drop_all(Phase::CacheControl);

    // Post-processing phase 2: the viz node reads every snapshot back.
    if kind == ClusterKind::PostProcessing {
        // Visualization starts after the simulation allocation completes.
        let sim_done = compute.iter().map(Node::now).max().unwrap_or(SimTime::ZERO);
        sync_to(&mut viz, sim_done, Phase::Idle);
        for (step, sums) in &checksums {
            let mut slabs = Vec::with_capacity(cfg.compute_nodes);
            for (k, sum) in sums.iter().enumerate() {
                let bytes = pfs.read(
                    &mut viz,
                    &fabric,
                    &format!("snap{step:04}.n{k:02}"),
                    Phase::Read,
                )?;
                if fnv1a(&bytes) != *sum {
                    verified = false;
                }
                slabs.push(bytes);
            }
            let all: Vec<u8> = slabs.concat();
            let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &all).ok_or_else(|| {
                ClusterError::SnapshotShape {
                    file: format!("snap{step:04}"),
                    got_bytes: all.len(),
                    want: (cfg.grid_nx, cfg.grid_ny),
                }
            })?;
            viz.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
            let _ = render_field(&grid, &cfg.render);
        }
    }

    // The allocation ends at the makespan; early finishers idle until then.
    let mut everyone: Vec<&mut Node> = compute.iter_mut().collect();
    everyone.push(&mut viz);
    let makespan = everyone
        .iter()
        .map(|n| n.now())
        .chain(pfs.servers().iter().map(|s| s.node.now()))
        .max()
        .unwrap_or(SimTime::ZERO);
    for node in everyone {
        sync_to(node, makespan, Phase::Idle);
    }

    let compute_energy_j: f64 = compute.iter().map(|n| n.timeline().total_energy_j()).sum();
    // PFS servers also idle to the makespan for fair accounting.
    let io_energy_j: f64 = pfs
        .servers()
        .iter()
        .map(|s| {
            s.node.timeline().total_energy_j()
                + s.node.spec().static_w() * makespan.duration_since(s.node.now()).as_secs_f64()
        })
        .sum();
    let viz_energy_j = viz.timeline().total_energy_j();
    let total_energy_j = compute_energy_j + io_energy_j + viz_energy_j;
    let makespan_s = makespan.as_secs_f64();

    let (storage_faults, storage_retries) = pfs.fault_counts();
    let (fabric_drops, fabric_delays, fabric_retries) = fabric.fault_counts();
    let summary = FaultSummary {
        storage_faults,
        storage_retries,
        fabric_drops,
        fabric_delays,
        fabric_retries,
    };

    let report = ClusterReport {
        kind,
        makespan_s,
        total_energy_j,
        average_power_w: if makespan_s > 0.0 {
            total_energy_j / makespan_s
        } else {
            0.0
        },
        compute_energy_j,
        io_energy_j,
        viz_energy_j,
        bytes_out,
        verified,
        work_units: cfg.work_units(),
    };
    Ok((report, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterConfig {
        ClusterConfig {
            timesteps: 6,
            ..ClusterConfig::small(4, 2)
        }
    }

    #[test]
    fn post_processing_round_trips_and_verifies() {
        let r = run_cluster(ClusterKind::PostProcessing, &small()).unwrap();
        assert!(r.verified, "PFS corrupted a snapshot");
        assert!(r.makespan_s > 0.0);
        assert_eq!(r.bytes_out, 6 * 128 * 128 * 8);
        assert!(r.viz_energy_j > 0.0, "viz node never worked");
    }

    #[test]
    fn insitu_beats_post_processing_on_cluster_energy_too() {
        let cfg = small();
        let post = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let insitu = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        assert!(
            insitu.total_energy_j < post.total_energy_j,
            "in-situ {} J vs post {} J",
            insitu.total_energy_j,
            post.total_energy_j
        );
        assert!(insitu.makespan_s < post.makespan_s);
        assert!(insitu.efficiency() > post.efficiency());
    }

    #[test]
    fn intransit_also_beats_post_processing() {
        // Staging avoids writing raw data to disk: far cheaper than
        // post-processing. Against in-situ the comparison is close and can
        // go either way — staging consolidates image output into one
        // full-frame write while per-node in-situ pays N smaller fsync'd
        // writes — so we only pin the robust ordering and the rough parity.
        let cfg = small();
        let post = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let transit = run_cluster(ClusterKind::InTransit, &cfg).unwrap();
        let insitu = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        assert!(transit.total_energy_j < post.total_energy_j);
        assert!(insitu.total_energy_j < post.total_energy_j);
        let ratio = transit.total_energy_j / insitu.total_energy_j;
        assert!((0.7..=1.3).contains(&ratio), "transit/insitu ratio {ratio}");
    }

    #[test]
    fn energy_partition_sums() {
        let r = run_cluster(ClusterKind::PostProcessing, &small()).unwrap();
        let sum = r.compute_energy_j + r.io_energy_j + r.viz_energy_j;
        assert!((sum - r.total_energy_j).abs() < 1e-6);
    }

    #[test]
    fn faulted_run_converges_and_pays_static_energy() {
        // Same physics, same data — the degraded run just takes longer and
        // burns more (idle) energy. `verified` attests the final images:
        // every snapshot read back matches its pre-write checksum.
        let cfg = small();
        let clean = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let (faulted, summary) = run_cluster_with_faults(
            ClusterKind::PostProcessing,
            &cfg,
            Some(FaultPlan::with_seed(42)),
        )
        .unwrap();
        assert!(summary.total_faults() > 0, "seed 42 injected nothing");
        assert!(faulted.verified, "faults corrupted data");
        assert_eq!(faulted.bytes_out, clean.bytes_out);
        assert!(
            faulted.makespan_s > clean.makespan_s,
            "degraded run should be slower: {} vs {}",
            faulted.makespan_s,
            clean.makespan_s
        );
        assert!(faulted.total_energy_j > clean.total_energy_j);
    }

    #[test]
    fn same_fault_seed_is_bit_identical() {
        let cfg = small();
        let run = || {
            run_cluster_with_faults(ClusterKind::InTransit, &cfg, Some(FaultPlan::with_seed(7)))
                .unwrap()
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(sa, sb);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
    }

    #[test]
    fn no_plan_leaves_the_report_bit_identical() {
        let cfg = small();
        let plain = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        let (gated, summary) = run_cluster_with_faults(ClusterKind::InSitu, &cfg, None).unwrap();
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(plain.makespan_s.to_bits(), gated.makespan_s.to_bits());
        assert_eq!(
            plain.total_energy_j.to_bits(),
            gated.total_energy_j.to_bits()
        );
    }

    #[test]
    fn more_io_servers_speed_up_the_write_phase() {
        let mut one = small();
        one.io_servers = 1;
        let mut four = small();
        four.io_servers = 4;
        let slow = run_cluster(ClusterKind::PostProcessing, &one).unwrap();
        let fast = run_cluster(ClusterKind::PostProcessing, &four).unwrap();
        assert!(
            fast.makespan_s < slow.makespan_s,
            "{} vs {}",
            fast.makespan_s,
            slow.makespan_s
        );
    }
}
