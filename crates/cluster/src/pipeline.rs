//! Distributed visualization pipelines over the cluster substrate.
//!
//! The single-node story of the paper, replayed at cluster scale:
//!
//! * **post-processing**: compute nodes advance their slabs (ghost exchange
//!   over the fabric, barrier per step) and write raw slabs to the parallel
//!   filesystem every I/O step; afterwards a visualization node reads every
//!   snapshot back and renders it;
//! * **in-situ**: compute nodes render their own slabs and write only PPM
//!   images to the PFS;
//! * **in-transit**: compute nodes stage slabs — optionally compressed on
//!   the wire — into dedicated staging nodes through bounded per-stager
//!   send queues. A compute node only blocks (real static idle, charged, and
//!   visible as `staging.queue.block` in the trace) when its stager's queue
//!   is full; otherwise its clock advances into the next simulation step
//!   while the stager drains transfers and renders the *previous* frame at
//!   its own clock — the Bennett et al. staging organization (paper ref
//!   [10]), with genuine simulate/transfer/render overlap.
//!
//! Wire compression replays the paper's own dynamic-vs-static trade at
//! cluster scale: encode/decode are charged as CPU dynamic energy against
//! the fabric-byte and both-endpoint static-time savings.
//!
//! Energy is accounted across *every* node (compute + I/O servers +
//! staging); the run ends at the makespan, and nodes that finish early idle
//! — at real static power — until it, as in any space-shared allocation.

use std::collections::VecDeque;

use greenness_codec::delta::DeltaVarint;
use greenness_codec::quant::Quant8;
use greenness_codec::{Codec, CodecCostModel, ScratchCodec};
use greenness_faults::{FaultInjector, FaultPlan, Site};
use greenness_heatsim::{Grid, SimCostModel, SolverConfig};
use greenness_platform::{HardwareSpec, NetModel, Node, Phase, SimTime};
use greenness_trace::{Tracer, Value};
use greenness_viz::{encode_ppm, render_field, RenderCostModel, RenderOptions};
use serde::{Deserialize, Serialize};

use crate::error::{ClusterError, FaultSummary};
use crate::fabric::{barrier, sync_to, Fabric};
use crate::pfs::ParallelFs;
use crate::slab::DecomposedSolver;

/// Which distributed pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterKind {
    /// Write raw slabs to the PFS; visualize later on a viz node.
    PostProcessing,
    /// Render on the compute nodes; persist only images.
    InSitu,
    /// Stage slabs to the staging nodes over the fabric.
    InTransit,
}

impl ClusterKind {
    /// CLI label (`post` / `insitu` / `intransit`).
    pub fn label(self) -> &'static str {
        match self {
            ClusterKind::PostProcessing => "post",
            ClusterKind::InSitu => "insitu",
            ClusterKind::InTransit => "intransit",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<ClusterKind> {
        match s {
            "post" | "post-processing" => Some(ClusterKind::PostProcessing),
            "insitu" | "in-situ" => Some(ClusterKind::InSitu),
            "intransit" | "in-transit" => Some(ClusterKind::InTransit),
            _ => None,
        }
    }
}

/// Compression applied to staged slabs on the fabric (in-transit only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireCodec {
    /// Raw little-endian f64 slabs on the wire.
    None,
    /// Lossless bit-delta + zigzag varint (`greenness_codec::delta`).
    DeltaRle,
    /// Lossy 255-level quantization + delta coding
    /// (`greenness_codec::quant::Quant8`): bounded error, large byte wins
    /// on smooth fields.
    Quant8,
}

impl WireCodec {
    /// CLI label (`none` / `delta-rle` / `quant8`).
    pub fn label(self) -> &'static str {
        match self {
            WireCodec::None => "none",
            WireCodec::DeltaRle => "delta-rle",
            WireCodec::Quant8 => "quant8",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<WireCodec> {
        match s {
            "none" => Some(WireCodec::None),
            "delta-rle" => Some(WireCodec::DeltaRle),
            "quant8" => Some(WireCodec::Quant8),
            _ => None,
        }
    }

    /// Whether decoded payloads are bit-identical to the originals (gates
    /// checksum verification of staged slabs).
    pub fn lossless(self) -> bool {
        !matches!(self, WireCodec::Quant8)
    }

    /// Instantiate the codec; `None` for the raw wire.
    fn build(self) -> Option<Box<dyn Codec>> {
        match self {
            WireCodec::None => None,
            WireCodec::DeltaRle => Some(Box::new(DeltaVarint)),
            WireCodec::Quant8 => Some(Box::new(Quant8)),
        }
    }
}

/// In-transit staging topology and flow control.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagingConfig {
    /// Dedicated staging nodes; frames are distributed round-robin.
    pub staging_nodes: usize,
    /// Frames that may be in flight per stager before the *senders* block
    /// (charged static idle). `0` degenerates to the synchronous legacy
    /// organization — every compute node waits for the stager to finish
    /// each frame — which doubles as the serialized baseline the overlap
    /// goldens compare against.
    pub queue_depth: usize,
    /// Compression applied to staged slabs on the wire.
    pub wire_codec: WireCodec,
}

impl Default for StagingConfig {
    fn default() -> Self {
        StagingConfig {
            staging_nodes: 1,
            queue_depth: 2,
            wire_codec: WireCodec::None,
        }
    }
}

/// Cluster workload description.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Compute nodes (= solver slabs).
    pub compute_nodes: usize,
    /// PFS object servers.
    pub io_servers: usize,
    /// Global grid extent.
    pub grid_nx: usize,
    /// Global grid extent.
    pub grid_ny: usize,
    /// Simulation timesteps.
    pub timesteps: u64,
    /// I/O + visualization every `io_interval` steps.
    pub io_interval: u64,
    /// PFS stripe size, bytes.
    pub stripe_bytes: usize,
    /// Solver physics.
    pub solver: SolverConfig,
    /// Per-node compute cost model.
    pub sim_cost: SimCostModel,
    /// Rendering cost model.
    pub render_cost: RenderCostModel,
    /// Rendering controls (full-frame; slab renders scale by row share).
    pub render: RenderOptions,
    /// Node hardware (all nodes identical).
    pub spec: HardwareSpec,
    /// Interconnect link model (fabric transfers and PFS traffic).
    pub net: NetModel,
    /// In-transit staging topology (ignored by the other pipelines).
    pub staging: StagingConfig,
}

impl ClusterConfig {
    /// A 4-compute-node, 2-server cluster running the case-study-1 workload
    /// at reduced grid scale (128×128; per-step modeled work matches the
    /// full-scale calibration via the area-scaled cost constants).
    pub fn small(compute_nodes: usize, io_servers: usize) -> ClusterConfig {
        let scale = (512.0 * 512.0) / (128.0 * 128.0);
        let mut sim_cost = SimCostModel::default();
        // Per-*cluster* step work equals one full-scale step; each node
        // handles 1/compute_nodes of it on its own 16 cores.
        sim_cost.flops_per_cell_update *= scale;
        sim_cost.dram_bytes_per_cell_update *= scale;
        let mut render_cost = RenderCostModel::default();
        render_cost.flops_per_pixel *= scale;
        render_cost.dram_bytes_per_pixel *= scale;
        ClusterConfig {
            compute_nodes,
            io_servers,
            grid_nx: 128,
            grid_ny: 128,
            timesteps: 10,
            io_interval: 1,
            stripe_bytes: 128 * 1024,
            solver: default_solver(128, 128),
            sim_cost,
            render_cost,
            render: RenderOptions {
                width: 128,
                height: 128,
                range: Some((0.0, 1.0)),
                ..Default::default()
            },
            spec: HardwareSpec::table1(),
            net: NetModel::ten_gbe(),
            staging: StagingConfig::default(),
        }
    }

    /// The paper's case-study workloads (§IV: I/O every 1 / 2 / 8 steps) on
    /// a 4-compute-node, 2-server cluster at 256×256 grid scale, over a
    /// deliberately narrow staging fabric (a per-node share of a heavily
    /// oversubscribed link) so wire time is a first-order term — the regime
    /// where compression-on-the-wire earns or loses its keep.
    pub fn case_study(n: u32) -> ClusterConfig {
        let io_interval = match n {
            1 => 1,
            2 => 2,
            3 => 8,
            _ => panic!("the paper defines case studies 1-3, got {n}"),
        };
        let scale = (512.0 * 512.0) / (256.0 * 256.0);
        let mut sim_cost = SimCostModel::default();
        sim_cost.flops_per_cell_update *= scale;
        sim_cost.dram_bytes_per_cell_update *= scale;
        let mut render_cost = RenderCostModel::default();
        render_cost.flops_per_pixel *= scale;
        render_cost.dram_bytes_per_pixel *= scale;
        ClusterConfig {
            compute_nodes: 4,
            io_servers: 2,
            grid_nx: 256,
            grid_ny: 256,
            timesteps: 16,
            io_interval,
            stripe_bytes: 128 * 1024,
            solver: default_solver(256, 256),
            sim_cost,
            render_cost,
            render: RenderOptions {
                width: 256,
                height: 256,
                range: Some((0.0, 1.0)),
                ..Default::default()
            },
            spec: HardwareSpec::table1(),
            net: NetModel {
                bandwidth_bytes_per_s: 0.75e6,
                active_w: 2.5,
                latency_s: 100e-6,
            },
            staging: StagingConfig::default(),
        }
    }

    /// Total useful work (cell updates).
    pub fn work_units(&self) -> f64 {
        (self.grid_nx * self.grid_ny) as f64 * self.timesteps as f64
    }
}

/// A CFL-stable configuration matching `greenness_core`'s defaults.
fn default_solver(nx: usize, ny: usize) -> SolverConfig {
    let limit = 0.5 / ((nx * nx + ny * ny) as f64);
    let alpha = 1.0e-4;
    SolverConfig {
        alpha,
        dt: 0.8 * limit / alpha,
        boundary: greenness_heatsim::Boundary::Neumann,
        sources: vec![greenness_heatsim::PointSource {
            i: nx / 3,
            j: ny / 3,
            rate: 40.0 / (0.8 * limit / alpha) / 50.0,
        }],
    }
}

/// Results of one distributed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Which pipeline ran.
    pub kind: ClusterKind,
    /// Wall time to the last node's completion, seconds.
    pub makespan_s: f64,
    /// Energy summed over every node, joules.
    pub total_energy_j: f64,
    /// `total_energy / makespan`, watts.
    pub average_power_w: f64,
    /// Energy of the compute nodes alone, joules.
    pub compute_energy_j: f64,
    /// Energy of the PFS servers alone, joules.
    pub io_energy_j: f64,
    /// Energy of the visualization/staging nodes alone, joules.
    pub viz_energy_j: f64,
    /// Bytes staged over the fabric to the staging nodes (post-compression
    /// wire bytes; zero outside in-transit — ghost exchange and PFS striping
    /// are accounted in their own channels, not here).
    pub fabric_bytes: u64,
    /// Bytes written into the parallel filesystem (raw snapshots or images).
    pub pfs_bytes: u64,
    /// Total output: `fabric_bytes + pfs_bytes`. Kept for compatibility;
    /// the split fields are the comparable quantities across pipelines.
    pub bytes_out: u64,
    /// Pre-compression size of the staged slabs (equals `fabric_bytes` on a
    /// raw wire; zero outside in-transit).
    pub staging_raw_bytes: u64,
    /// FNV-1a over every emitted PPM image, in emission order — the
    /// pipeline's visual output fingerprint (chaos tests assert faulted
    /// runs converge to it).
    pub image_hash: u64,
    /// All integrity checks passed: post-processing snapshot round-trips,
    /// and (for a lossless wire) staged slabs decoded bit-identically.
    pub verified: bool,
    /// Useful work (cell updates).
    pub work_units: f64,
}

impl ClusterReport {
    /// Energy efficiency, work per joule.
    pub fn efficiency(&self) -> f64 {
        if self.total_energy_j <= 0.0 {
            0.0
        } else {
            self.work_units / self.total_energy_j
        }
    }
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_with(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(FNV_SEED, bytes)
}

/// Exact pixel-row partition for slab renders: slab rows `[j0, j0+rows)` of
/// a `ny`-row grid own pixel rows `[height*j0/ny, height*(j0+rows)/ny)`.
/// The boundaries telescope, so per-slab heights (and pixel charges) sum to
/// exactly the full frame — no truncation bias on odd grids.
fn slab_rows_px(height: usize, ny: usize, j0: usize, rows: usize) -> usize {
    height * (j0 + rows) / ny - height * j0 / ny
}

/// Run the distributed pipeline described by `cfg`, fault-free.
pub fn run_cluster(kind: ClusterKind, cfg: &ClusterConfig) -> Result<ClusterReport, ClusterError> {
    run_cluster_with_faults(kind, cfg, None).map(|(report, _)| report)
}

/// Run the distributed pipeline under an optional seeded fault plan. A
/// degraded run completes slower (retries and backoff are real idle time —
/// static energy in every node's timeline) and reports what it absorbed in
/// the [`FaultSummary`]; only an exhausted retry budget or a genuinely
/// undersized PFS aborts the run with a structured [`ClusterError`].
pub fn run_cluster_with_faults(
    kind: ClusterKind,
    cfg: &ClusterConfig,
    faults: Option<FaultPlan>,
) -> Result<(ClusterReport, FaultSummary), ClusterError> {
    run_cluster_traced(kind, cfg, faults, &Tracer::off())
}

/// [`run_cluster_with_faults`] with a tracer attached to every compute and
/// staging node: phase spans, `fault.injected` instants, and the staging
/// vocabulary (`staging.queue.block` / `staging.frame.render` instants,
/// `staging.bytes.wire` / `staging.bytes.raw` counters) land in `tracer`.
pub fn run_cluster_traced(
    kind: ClusterKind,
    cfg: &ClusterConfig,
    faults: Option<FaultPlan>,
    tracer: &Tracer,
) -> Result<(ClusterReport, FaultSummary), ClusterError> {
    let mut fabric = Fabric::new(cfg.net.clone());
    if let Some(plan) = faults {
        fabric.set_fault_injector(Some(plan.injector(Site::FabricTransfer, 0)));
    }
    let fabric = fabric;
    // NetTransfer activities are priced by the endpoint NICs, so the
    // cluster's link model must live on every node's spec.
    let mut spec = cfg.spec.clone();
    spec.net = cfg.net.clone();
    let n_stagers = cfg.staging.staging_nodes.max(1);
    let mut compute: Vec<Node> = (0..cfg.compute_nodes)
        .map(|_| Node::new(spec.clone()))
        .collect();
    let mut stagers: Vec<Node> = (0..n_stagers).map(|_| Node::new(spec.clone())).collect();
    for node in compute.iter_mut().chain(stagers.iter_mut()) {
        node.set_tracer(tracer.clone());
    }
    let mut pfs = ParallelFs::new(cfg.io_servers, &spec, cfg.stripe_bytes, 1024 * 1024 * 1024);
    pfs.set_fault_plan(faults);
    let mut render_inj: Option<FaultInjector> = faults.map(|p| p.injector(Site::StagingRender, 0));

    let initial = Grid::from_fn(cfg.grid_nx, cfg.grid_ny, |x, y| {
        0.3 * (-((x - 0.5).powi(2) + (y - 0.4).powi(2)) * 40.0).exp()
    });
    let mut solver = DecomposedSolver::new(&initial, cfg.solver.clone(), cfg.compute_nodes);
    let ghost = solver.ghost_traffic();
    let pixels = (cfg.render.width * cfg.render.height) as u64;

    // Wire compression state: one warm buffer set per sender (steady-state
    // encoding performs no heap allocation), one decoder on the staging
    // side. Encode and decode are charged as CPU dynamic energy.
    let codec_cost = CodecCostModel::default();
    let mut encoders: Vec<ScratchCodec> = if kind == ClusterKind::InTransit {
        (0..cfg.compute_nodes)
            .filter_map(|_| cfg.staging.wire_codec.build().map(ScratchCodec::new))
            .collect()
    } else {
        Vec::new()
    };
    let wire_decoder: Option<Box<dyn Codec>> = cfg.staging.wire_codec.build();

    // Per-stager bounded send queues: release instants (stager clock at
    // frame completion) of the frames still occupying a queue slot.
    let mut inflight: Vec<VecDeque<SimTime>> = vec![VecDeque::new(); n_stagers];
    let mut frame_no = 0usize;

    let mut fabric_bytes = 0u64;
    let mut pfs_bytes = 0u64;
    let mut staging_raw_bytes = 0u64;
    let mut staging_torn_renders = 0u64;
    let mut image_hash = FNV_SEED;
    let mut verified = true;
    let mut checksums: Vec<(u64, Vec<u64>)> = Vec::new(); // (step, per-slab fnv)

    for step in 1..=cfg.timesteps {
        // The real distributed physics.
        solver.step();
        // Each node charges its slab's updates...
        for (k, node) in compute.iter_mut().enumerate() {
            let cells = solver.slab_info(k).cells;
            node.execute(cfg.sim_cost.activity(cells), Phase::Simulation);
        }
        // ...and each neighbor pair exchanges ghost rows, both directions.
        for k in 0..ghost.pairs {
            let (a, b) = compute.split_at_mut(k + 1);
            let (lo, hi) = (&mut a[k], &mut b[0]);
            fabric.transfer_reliable(lo, hi, ghost.bytes_per_direction, 1, Phase::Network)?;
            fabric.transfer_reliable(hi, lo, ghost.bytes_per_direction, 1, Phase::Network)?;
        }
        barrier(&mut compute, Phase::Idle);

        if step % cfg.io_interval != 0 {
            continue;
        }
        match kind {
            ClusterKind::PostProcessing => {
                let mut sums = Vec::with_capacity(cfg.compute_nodes);
                for (k, node) in compute.iter_mut().enumerate() {
                    let bytes = solver.slab_bytes(k);
                    sums.push(fnv1a(&bytes));
                    pfs_bytes += bytes.len() as u64;
                    pfs.write(
                        node,
                        &fabric,
                        &format!("snap{step:04}.n{k:02}"),
                        &bytes,
                        Phase::Write,
                    )?;
                }
                checksums.push((step, sums));
            }
            ClusterKind::InSitu => {
                for (k, node) in compute.iter_mut().enumerate() {
                    let info = solver.slab_info(k);
                    // Render this node's share of the frame: an exact
                    // partition of the pixel rows, so charges and output
                    // sum to one full frame even on odd grids.
                    let rows_px = slab_rows_px(cfg.render.height, cfg.grid_ny, info.j0, info.rows);
                    node.execute(
                        cfg.render_cost
                            .activity((cfg.render.width * rows_px) as u64),
                        Phase::Visualization,
                    );
                    let slab_render = render_field(
                        &solver.slab_grid(k),
                        &RenderOptions {
                            height: rows_px,
                            ..cfg.render
                        },
                    );
                    let ppm = encode_ppm(&slab_render);
                    image_hash = fnv1a_with(image_hash, &ppm);
                    pfs_bytes += ppm.len() as u64;
                    pfs.write(
                        node,
                        &fabric,
                        &format!("frame{step:04}.n{k:02}.ppm"),
                        &ppm,
                        Phase::ImageWrite,
                    )?;
                }
            }
            ClusterKind::InTransit => {
                let s = frame_no % n_stagers;
                let depth = cfg.staging.queue_depth;
                // Backpressure: with all of this stager's queue slots
                // occupied, the senders must wait for the oldest in-flight
                // frame to release — real static idle, charged and traced.
                if depth > 0 && inflight[s].len() >= depth {
                    let release = inflight[s].pop_front().expect("non-empty queue");
                    for (k, node) in compute.iter_mut().enumerate() {
                        if node.now() < release {
                            let wait = release.duration_since(node.now()).as_secs_f64();
                            tracer.count("staging.queue.blocks", 1);
                            if tracer.is_on() {
                                tracer.instant(
                                    node.now().as_nanos(),
                                    "staging.queue.block",
                                    vec![
                                        ("step", Value::from(step)),
                                        ("node", Value::from(k)),
                                        ("stager", Value::from(s)),
                                        ("wait_s", Value::from(wait)),
                                    ],
                                );
                            }
                            sync_to(node, release, Phase::Network);
                        }
                    }
                }
                // Encode and stage every slab: one-sided sends occupy only
                // the sender's NIC, so compute clocks advance into the next
                // step while the stager drains at its own pace.
                let mut staged: Vec<(SimTime, u32, Vec<u8>, u64, u64)> =
                    Vec::with_capacity(cfg.compute_nodes);
                for (k, node) in compute.iter_mut().enumerate() {
                    let raw = solver.slab_bytes(k);
                    let raw_len = raw.len() as u64;
                    let sum = fnv1a(&raw);
                    staging_raw_bytes += raw_len;
                    tracer.count("staging.bytes.raw", raw_len);
                    let payload: Vec<u8> = match encoders.get_mut(k) {
                        Some(enc) => {
                            node.execute(codec_cost.encode_activity(raw_len), Phase::Network);
                            enc.try_encode(&raw)
                                .map_err(|e| ClusterError::WireCodec {
                                    step,
                                    node: k,
                                    reason: e.to_string(),
                                })?
                                .to_vec()
                        }
                        None => raw,
                    };
                    let wire_len = payload.len() as u64;
                    fabric_bytes += wire_len;
                    tracer.count("staging.bytes.wire", wire_len);
                    let messages = payload.len().div_ceil(cfg.stripe_bytes).max(1) as u32;
                    let arrival = fabric.send_reliable(node, wire_len, messages, Phase::Network)?;
                    staged.push((arrival, messages, payload, raw_len, sum));
                }
                // The stager drains the transfers and renders the frame at
                // its own clock (the overlap window for the senders).
                let stager = &mut stagers[s];
                let mut slabs: Vec<Vec<u8>> = Vec::with_capacity(cfg.compute_nodes);
                for (arrival, messages, payload, raw_len, sum) in staged {
                    sync_to(stager, arrival, Phase::Network);
                    fabric.recv(stager, payload.len() as u64, messages, Phase::Network);
                    let raw = match &wire_decoder {
                        Some(codec) => {
                            stager.execute(codec_cost.decode_activity(raw_len), Phase::Network);
                            codec.decode(&payload).ok_or(ClusterError::SnapshotShape {
                                file: format!("stage{step:04}"),
                                got_bytes: 0,
                                want: (cfg.grid_nx, cfg.grid_ny),
                            })?
                        }
                        None => payload,
                    };
                    if cfg.staging.wire_codec.lossless() && fnv1a(&raw) != sum {
                        verified = false;
                    }
                    slabs.push(raw);
                }
                let all: Vec<u8> = slabs.concat();
                let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &all).ok_or_else(|| {
                    ClusterError::SnapshotShape {
                        file: format!("stage{step:04}"),
                        got_bytes: all.len(),
                        want: (cfg.grid_nx, cfg.grid_ny),
                    }
                })?;
                // A torn staging render re-renders from the (still live)
                // assembled slabs: the work is paid again, the output is
                // never corrupted. Bounded by the plan's retry budget.
                let mut torn = 0u32;
                if let Some(inj) = render_inj.as_mut() {
                    let budget = inj.plan().max_retries;
                    while torn < budget {
                        if inj.next().is_none() {
                            break;
                        }
                        stager.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                        staging_torn_renders += 1;
                        torn += 1;
                        tracer.count("faults.staging.render", 1);
                        if tracer.is_on() {
                            tracer.instant(
                                stager.now().as_nanos(),
                                "fault.injected",
                                vec![
                                    ("site", Value::from(Site::StagingRender.label())),
                                    ("mode", Value::from("torn")),
                                    ("attempt", Value::from(torn - 1)),
                                    ("backoff_s", Value::from(0.0)),
                                ],
                            );
                        }
                    }
                }
                stager.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
                let frame = render_field(&grid, &cfg.render);
                let ppm = encode_ppm(&frame);
                if tracer.is_on() {
                    tracer.instant(
                        stager.now().as_nanos(),
                        "staging.frame.render",
                        vec![
                            ("step", Value::from(step)),
                            ("stager", Value::from(s)),
                            ("torn", Value::from(torn)),
                        ],
                    );
                }
                image_hash = fnv1a_with(image_hash, &ppm);
                pfs_bytes += ppm.len() as u64;
                pfs.write(
                    stager,
                    &fabric,
                    &format!("frame{step:04}.ppm"),
                    &ppm,
                    Phase::ImageWrite,
                )?;
                let release = stager.now();
                if depth == 0 {
                    // Synchronous legacy staging: every sender waits for
                    // the stager to finish the frame (serialized baseline).
                    for node in compute.iter_mut() {
                        sync_to(node, release, Phase::Network);
                    }
                } else {
                    inflight[s].push_back(release);
                }
                frame_no += 1;
            }
        }
        barrier(&mut compute, Phase::Idle);
    }

    pfs.sync_and_drop_all(Phase::CacheControl);

    // Post-processing phase 2: the viz node reads every snapshot back.
    if kind == ClusterKind::PostProcessing {
        // Visualization starts after the simulation allocation completes.
        let viz = &mut stagers[0];
        let sim_done = compute.iter().map(Node::now).max().unwrap_or(SimTime::ZERO);
        sync_to(viz, sim_done, Phase::Idle);
        for (step, sums) in &checksums {
            let mut slabs = Vec::with_capacity(cfg.compute_nodes);
            for (k, sum) in sums.iter().enumerate() {
                let bytes =
                    pfs.read(viz, &fabric, &format!("snap{step:04}.n{k:02}"), Phase::Read)?;
                if fnv1a(&bytes) != *sum {
                    verified = false;
                }
                slabs.push(bytes);
            }
            let all: Vec<u8> = slabs.concat();
            let grid = Grid::from_bytes(cfg.grid_nx, cfg.grid_ny, &all).ok_or_else(|| {
                ClusterError::SnapshotShape {
                    file: format!("snap{step:04}"),
                    got_bytes: all.len(),
                    want: (cfg.grid_nx, cfg.grid_ny),
                }
            })?;
            viz.execute(cfg.render_cost.activity(pixels), Phase::Visualization);
            let frame = render_field(&grid, &cfg.render);
            image_hash = fnv1a_with(image_hash, &encode_ppm(&frame));
        }
    }

    // The allocation ends at the makespan; early finishers idle until then.
    let mut everyone: Vec<&mut Node> = compute.iter_mut().collect();
    everyone.extend(stagers.iter_mut());
    let makespan = everyone
        .iter()
        .map(|n| n.now())
        .chain(pfs.servers().iter().map(|s| s.node.now()))
        .max()
        .unwrap_or(SimTime::ZERO);
    for node in everyone {
        sync_to(node, makespan, Phase::Idle);
    }
    for node in compute.iter_mut().chain(stagers.iter_mut()) {
        node.finish_trace();
    }

    let compute_energy_j: f64 = compute.iter().map(|n| n.timeline().total_energy_j()).sum();
    // PFS servers also idle to the makespan for fair accounting.
    let io_energy_j: f64 = pfs
        .servers()
        .iter()
        .map(|s| {
            s.node.timeline().total_energy_j()
                + s.node.spec().static_w() * makespan.duration_since(s.node.now()).as_secs_f64()
        })
        .sum();
    let viz_energy_j: f64 = stagers.iter().map(|n| n.timeline().total_energy_j()).sum();
    let total_energy_j = compute_energy_j + io_energy_j + viz_energy_j;
    let makespan_s = makespan.as_secs_f64();

    let (storage_faults, storage_retries) = pfs.fault_counts();
    let (fabric_drops, fabric_delays, fabric_retries) = fabric.fault_counts();
    let summary = FaultSummary {
        storage_faults,
        storage_retries,
        fabric_drops,
        fabric_delays,
        fabric_retries,
        staging_torn_renders,
    };

    let report = ClusterReport {
        kind,
        makespan_s,
        total_energy_j,
        average_power_w: if makespan_s > 0.0 {
            total_energy_j / makespan_s
        } else {
            0.0
        },
        compute_energy_j,
        io_energy_j,
        viz_energy_j,
        fabric_bytes,
        pfs_bytes,
        bytes_out: fabric_bytes + pfs_bytes,
        staging_raw_bytes,
        image_hash,
        verified,
        work_units: cfg.work_units(),
    };
    Ok((report, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterConfig {
        ClusterConfig {
            timesteps: 6,
            ..ClusterConfig::small(4, 2)
        }
    }

    #[test]
    fn post_processing_round_trips_and_verifies() {
        let r = run_cluster(ClusterKind::PostProcessing, &small()).unwrap();
        assert!(r.verified, "PFS corrupted a snapshot");
        assert!(r.makespan_s > 0.0);
        // Byte channels are split: post-processing ships nothing over the
        // staging fabric; the PFS holds every raw snapshot.
        assert_eq!(r.fabric_bytes, 0);
        assert_eq!(r.pfs_bytes, 6 * 128 * 128 * 8);
        assert_eq!(r.bytes_out, r.fabric_bytes + r.pfs_bytes);
        assert!(r.viz_energy_j > 0.0, "viz node never worked");
        assert_ne!(r.image_hash, FNV_SEED, "no frames were rendered");
    }

    #[test]
    fn insitu_beats_post_processing_on_cluster_energy_too() {
        let cfg = small();
        let post = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let insitu = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        assert!(
            insitu.total_energy_j < post.total_energy_j,
            "in-situ {} J vs post {} J",
            insitu.total_energy_j,
            post.total_energy_j
        );
        assert!(insitu.makespan_s < post.makespan_s);
        assert!(insitu.efficiency() > post.efficiency());
    }

    #[test]
    fn intransit_also_beats_post_processing() {
        // Staging avoids writing raw data to disk: far cheaper than
        // post-processing. Against in-situ the comparison is close and can
        // go either way — staging consolidates image output into one
        // full-frame write while per-node in-situ pays N smaller fsync'd
        // writes — so we only pin the robust ordering and the rough parity.
        let cfg = small();
        let post = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let transit = run_cluster(ClusterKind::InTransit, &cfg).unwrap();
        let insitu = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        assert!(transit.total_energy_j < post.total_energy_j);
        assert!(insitu.total_energy_j < post.total_energy_j);
        let ratio = transit.total_energy_j / insitu.total_energy_j;
        assert!((0.7..=1.3).contains(&ratio), "transit/insitu ratio {ratio}");
    }

    #[test]
    fn overlap_beats_synchronous_staging() {
        // queue_depth 0 is the serialized legacy organization: every sender
        // waits out the stager's render. Any real queue must beat it.
        let overlapped = small();
        let mut synchronous = small();
        synchronous.staging.queue_depth = 0;
        let fast = run_cluster(ClusterKind::InTransit, &overlapped).unwrap();
        let slow = run_cluster(ClusterKind::InTransit, &synchronous).unwrap();
        assert!(
            fast.makespan_s < slow.makespan_s,
            "overlap {} s vs synchronous {} s",
            fast.makespan_s,
            slow.makespan_s
        );
        // Same images either way: flow control never touches content.
        assert_eq!(fast.image_hash, slow.image_hash);
    }

    #[test]
    fn backpressure_blocks_are_traced() {
        let (tracer, _handle) = Tracer::memory();
        let mut cfg = small();
        cfg.staging.queue_depth = 1;
        run_cluster_traced(ClusterKind::InTransit, &cfg, None, &tracer).unwrap();
        assert!(
            tracer.counter("staging.queue.blocks") > 0,
            "a depth-1 queue against a render-bound stager must block"
        );
        assert!(tracer.counter("staging.bytes.wire") > 0);
        assert_eq!(
            tracer.counter("staging.bytes.raw"),
            6 * 128 * 128 * 8,
            "raw staged bytes are the full snapshot stream"
        );
    }

    #[test]
    fn lossless_wire_codec_preserves_images_and_verifies() {
        let raw = small();
        let mut coded = small();
        coded.staging.wire_codec = WireCodec::DeltaRle;
        let a = run_cluster(ClusterKind::InTransit, &raw).unwrap();
        let b = run_cluster(ClusterKind::InTransit, &coded).unwrap();
        assert!(b.verified, "lossless wire failed checksum verification");
        assert_eq!(a.image_hash, b.image_hash, "lossless wire changed pixels");
        assert_eq!(a.staging_raw_bytes, b.staging_raw_bytes);
        assert_ne!(
            a.fabric_bytes, b.fabric_bytes,
            "codec did not touch the wire"
        );
    }

    #[test]
    fn extra_stagers_share_frames_without_changing_them() {
        let one = small();
        let mut two = small();
        two.staging.staging_nodes = 2;
        let a = run_cluster(ClusterKind::InTransit, &one).unwrap();
        let b = run_cluster(ClusterKind::InTransit, &two).unwrap();
        assert_eq!(a.image_hash, b.image_hash, "round-robin changed content");
        assert!(
            b.makespan_s <= a.makespan_s,
            "a second stager should never slow the pipeline: {} vs {}",
            b.makespan_s,
            a.makespan_s
        );
    }

    #[test]
    fn insitu_partition_is_exact_on_odd_grids() {
        // 130 rows over 4 slabs: 33+33+32+32. The pixel-row partition must
        // telescope to the full frame height with no truncation bias.
        let heights = [(130usize, 130usize), (100, 130), (64, 30)];
        for (height, ny) in heights {
            let base = ny / 4;
            let extra = ny % 4;
            let mut j0 = 0usize;
            let mut total = 0usize;
            for k in 0..4 {
                let rows = base + usize::from(k < extra);
                total += slab_rows_px(height, ny, j0, rows);
                j0 += rows;
            }
            assert_eq!(total, height, "height {height} over ny {ny}");
        }

        // And end to end: an odd grid renders and accounts cleanly.
        let mut cfg = ClusterConfig::small(4, 2);
        cfg.grid_nx = 130;
        cfg.grid_ny = 130;
        cfg.solver = default_solver(130, 130);
        cfg.render.width = 130;
        cfg.render.height = 130;
        cfg.timesteps = 2;
        let r = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        // 4 PPM slab images per step, heights summing to 130 rows exactly:
        // payload bytes are 3*w*h, headers are "P6\n130 H\n255\n".
        let payload = 2 * 3 * 130 * 130;
        let headers: usize = [33, 33, 32, 32]
            .iter()
            .map(|h| format!("P6\n130 {h}\n255\n").len())
            .sum::<usize>()
            * 2;
        assert_eq!(r.pfs_bytes, (payload + headers) as u64);
    }

    #[test]
    fn energy_partition_sums() {
        let r = run_cluster(ClusterKind::PostProcessing, &small()).unwrap();
        let sum = r.compute_energy_j + r.io_energy_j + r.viz_energy_j;
        assert!((sum - r.total_energy_j).abs() < 1e-6);
    }

    #[test]
    fn faulted_run_converges_and_pays_static_energy() {
        // Same physics, same data — the degraded run just takes longer and
        // burns more (idle) energy. `verified` attests the final images:
        // every snapshot read back matches its pre-write checksum.
        let cfg = small();
        let clean = run_cluster(ClusterKind::PostProcessing, &cfg).unwrap();
        let (faulted, summary) = run_cluster_with_faults(
            ClusterKind::PostProcessing,
            &cfg,
            Some(FaultPlan::with_seed(42)),
        )
        .unwrap();
        assert!(summary.total_faults() > 0, "seed 42 injected nothing");
        assert!(faulted.verified, "faults corrupted data");
        assert_eq!(faulted.bytes_out, clean.bytes_out);
        assert_eq!(faulted.image_hash, clean.image_hash);
        assert!(
            faulted.makespan_s > clean.makespan_s,
            "degraded run should be slower: {} vs {}",
            faulted.makespan_s,
            clean.makespan_s
        );
        assert!(faulted.total_energy_j > clean.total_energy_j);
    }

    #[test]
    fn same_fault_seed_is_bit_identical() {
        let cfg = small();
        let run = || {
            run_cluster_with_faults(ClusterKind::InTransit, &cfg, Some(FaultPlan::with_seed(7)))
                .unwrap()
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(sa, sb);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
        assert_eq!(a.image_hash, b.image_hash);
    }

    #[test]
    fn no_plan_leaves_the_report_bit_identical() {
        let cfg = small();
        let plain = run_cluster(ClusterKind::InSitu, &cfg).unwrap();
        let (gated, summary) = run_cluster_with_faults(ClusterKind::InSitu, &cfg, None).unwrap();
        assert_eq!(summary, FaultSummary::default());
        assert_eq!(plain.makespan_s.to_bits(), gated.makespan_s.to_bits());
        assert_eq!(
            plain.total_energy_j.to_bits(),
            gated.total_energy_j.to_bits()
        );
    }

    #[test]
    fn more_io_servers_speed_up_the_write_phase() {
        let mut one = small();
        one.io_servers = 1;
        let mut four = small();
        four.io_servers = 4;
        let slow = run_cluster(ClusterKind::PostProcessing, &one).unwrap();
        let fast = run_cluster(ClusterKind::PostProcessing, &four).unwrap();
        assert!(
            fast.makespan_s < slow.makespan_s,
            "{} vs {}",
            fast.makespan_s,
            slow.makespan_s
        );
    }
}
