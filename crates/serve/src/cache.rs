//! Content-addressed result cache: a strict-LRU map from request digests to
//! shared (`Arc`-backed) serialized result payloads, bounded by a byte
//! budget. Payloads are handed out as `Arc` clones, so a cache hit costs a
//! refcount bump — the response path writes the cache's own allocation to
//! the wire, never a copy.
//!
//! The budget counts **payload bytes only** and is exact: after any insert,
//! the sum of stored payload lengths never exceeds the budget, with
//! least-recently-used entries evicted first. A payload larger than the
//! whole budget is rejected outright (never stored, never evicts others).
//! Hit / miss / eviction / rejection counts are kept here and surfaced
//! through the service's `MetricsRegistry`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key: a BLAKE2s-256 digest of the canonicalized request.
pub type Key = [u8; 32];

/// The LRU cache. Not thread-safe by itself; the service wraps it in a
/// mutex.
pub struct ResultCache {
    budget: usize,
    bytes: usize,
    /// Recency order, front = least recently used.
    order: VecDeque<Key>,
    map: HashMap<Key, Arc<Vec<u8>>>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused because the payload alone exceeds the budget.
    pub rejected: u64,
}

impl ResultCache {
    /// An empty cache holding at most `budget` payload bytes.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            budget,
            bytes: 0,
            order: VecDeque::new(),
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    /// Payload bytes currently stored.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is stored, without touching recency or any counter —
    /// the fleet router's fill-if-absent probe.
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Read `key` without counting a hit or a miss and without refreshing
    /// recency — replication and rebalancing must be able to copy entries
    /// between shards without perturbing the hit/miss ledger the replay
    /// artifacts pin.
    pub fn peek(&self, key: &Key) -> Option<Arc<Vec<u8>>> {
        self.map.get(key).map(Arc::clone)
    }

    /// All stored keys in sorted (byte-lexicographic) order — a
    /// deterministic iteration order for rebalancing scans, independent of
    /// `HashMap` layout.
    pub fn keys_sorted(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Look up `key`, refreshing its recency on a hit. The returned `Arc`
    /// shares the stored allocation — no payload bytes are copied.
    pub fn get(&mut self, key: &Key) -> Option<Arc<Vec<u8>>> {
        if self.map.contains_key(key) {
            self.hits += 1;
            self.touch(key);
            self.map.get(key).map(Arc::clone)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert `value` under `key` as the most recently used entry, evicting
    /// LRU entries until the byte budget holds.
    pub fn insert(&mut self, key: Key, value: impl Into<Arc<Vec<u8>>>) {
        let value = value.into();
        if value.len() > self.budget {
            self.rejected += 1;
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.len();
            self.order.retain(|k| k != &key);
        }
        self.bytes += value.len();
        self.map.insert(key, value);
        self.order.push_back(key);
        while self.bytes > self.budget {
            // Over budget implies entries remain; an empty queue would mean
            // the byte ledger drifted, so stop evicting rather than spin.
            let Some(lru) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.map.remove(&lru) {
                self.bytes -= evicted.len();
            }
            self.evictions += 1;
        }
    }

    /// Remove `key` outright — the service uses this to evict an entry whose
    /// payload turned out to be corrupt. Counts as neither a hit, a miss,
    /// nor an eviction; callers account for the corruption themselves.
    pub fn remove(&mut self, key: &Key) -> Option<Arc<Vec<u8>>> {
        let value = self.map.remove(key)?;
        self.bytes -= value.len();
        self.order.retain(|k| k != key);
        Some(value)
    }

    fn touch(&mut self, key: &Key) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            self.order.push_back(*key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Key {
        [n; 32]
    }

    #[test]
    fn byte_budget_is_exact() {
        let mut c = ResultCache::new(100);
        c.insert(key(1), vec![0; 40]);
        c.insert(key(2), vec![0; 40]);
        assert_eq!(c.bytes(), 80);
        // 40 + 40 + 30 = 110 > 100: exactly one eviction brings it to 70.
        c.insert(key(3), vec![0; 30]);
        assert_eq!(c.bytes(), 70);
        assert_eq!(c.evictions, 1);
        assert!(c.get(&key(1)).is_none(), "oldest entry evicted");
        assert!(c.get(&key(2)).is_some());
        assert!(c.get(&key(3)).is_some());
        // A boundary-exact insert fits with zero headroom and no eviction.
        let mut exact = ResultCache::new(10);
        exact.insert(key(9), vec![0; 10]);
        assert_eq!(exact.bytes(), 10);
        assert_eq!(exact.evictions, 0);
    }

    #[test]
    fn hits_refresh_recency() {
        let mut c = ResultCache::new(100);
        c.insert(key(1), vec![0; 40]);
        c.insert(key(2), vec![0; 40]);
        assert!(c.get(&key(1)).is_some()); // 1 becomes most recent
        c.insert(key(3), vec![0; 40]); // must evict 2, not 1
        assert!(c.get(&key(2)).is_none());
        assert!(c.get(&key(1)).is_some());
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn oversized_payloads_are_rejected_not_thrashed() {
        let mut c = ResultCache::new(50);
        c.insert(key(1), vec![0; 30]);
        c.insert(key(2), vec![0; 51]);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.evictions, 0, "a rejected insert must not evict");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none());
    }

    #[test]
    fn hits_share_the_stored_allocation() {
        let mut c = ResultCache::new(100);
        let payload = Arc::new(vec![7u8; 10]);
        c.insert(key(1), Arc::clone(&payload));
        let got = c.get(&key(1)).expect("hit");
        assert!(Arc::ptr_eq(&got, &payload), "hit must not copy the payload");
    }

    #[test]
    fn peek_and_contains_do_not_touch_counters_or_recency() {
        let mut c = ResultCache::new(80);
        c.insert(key(1), vec![0; 40]);
        c.insert(key(2), vec![0; 40]);
        assert!(c.contains(&key(1)));
        assert!(c.peek(&key(1)).is_some());
        assert!(c.peek(&key(9)).is_none());
        assert_eq!((c.hits, c.misses), (0, 0), "peek must not count");
        // Peek did not refresh key 1: it is still the LRU entry.
        c.insert(key(3), vec![0; 40]);
        assert!(!c.contains(&key(1)), "peek must not refresh recency");
        assert_eq!(c.keys_sorted(), vec![key(2), key(3)]);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert(key(1), vec![0; 60]);
        c.insert(key(1), vec![1; 30]);
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key(1)).unwrap().as_slice(), &[1u8; 30][..]);
    }
}
