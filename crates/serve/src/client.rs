//! A minimal blocking NDJSON client — enough for `greenness query`, the
//! load harness, and the integration tests — plus [`RetryClient`], the
//! fault-tolerant wrapper the harness uses against a server with an
//! injected connection-drop schedule.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a `greenness serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read one response line (without the
    /// trailing newline).
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        let mut line = request.trim().to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        // `read_line` also returns on EOF mid-line; a response without its
        // trailing newline is torn, not complete — surface that as a clean
        // protocol error rather than handing back truncated JSON.
        if !response.ends_with('\n') {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-response (no trailing newline)",
            ));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }
}

/// One-shot convenience: connect, send, receive, disconnect.
pub fn query(addr: &str, request: &str) -> std::io::Result<String> {
    Client::connect(addr)?.roundtrip(request)
}

/// Whether a roundtrip failure means "the connection died" (worth a
/// reconnect-and-retry) rather than "the request is wrong".
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
    )
}

/// A [`Client`] that survives dropped connections: a torn or refused
/// roundtrip reconnects and resends with exponential backoff, up to a
/// bounded retry budget. Retries are counted separately so the harness can
/// report degradation without conflating it with errors.
pub struct RetryClient {
    addr: String,
    client: Option<Client>,
    max_retries: u32,
    backoff_base: Duration,
    /// Reconnect-and-resend attempts performed so far.
    pub retries: u64,
}

impl RetryClient {
    /// A lazy connection to `addr` with the given retry budget per request.
    pub fn new(addr: &str, max_retries: u32) -> RetryClient {
        RetryClient {
            addr: addr.to_string(),
            client: None,
            max_retries,
            backoff_base: Duration::from_millis(2),
            retries: 0,
        }
    }

    /// [`Client::roundtrip`], retried across connection drops.
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        let mut attempt = 0u32;
        loop {
            let mut client = match self.client.take() {
                Some(c) => c,
                None => Client::connect(&self.addr)?,
            };
            match client.roundtrip(request) {
                Ok(line) => {
                    self.client = Some(client);
                    return Ok(line);
                }
                Err(e) if retryable(&e) && attempt < self.max_retries => {
                    // The connection is dead; back off, then redial.
                    self.retries += 1;
                    std::thread::sleep(self.backoff_base * 2u32.saturating_pow(attempt.min(8)));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
