//! A minimal blocking NDJSON client — enough for `greenness query`, the
//! load harness, and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a `greenness serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read one response line (without the
    /// trailing newline).
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        let mut line = request.trim().to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }
}

/// One-shot convenience: connect, send, receive, disconnect.
pub fn query(addr: &str, request: &str) -> std::io::Result<String> {
    Client::connect(addr)?.roundtrip(request)
}
