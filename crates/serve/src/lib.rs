//! `greenness-serve` — a query service over the energy lab.
//!
//! The repo's analyses (`run`, `compare`, `whatif`, `advisor`, `sweep`) are
//! deterministic pure functions of their request, which makes them ideal
//! candidates for **content-addressed serving**: hash the canonicalized
//! request, cache the serialized result, and answer repeats without
//! recomputing. This crate provides the whole stack:
//!
//! * [`json`] — nested JSON parsing plus the canonical serialization used
//!   as the content-addressing pre-image (sorted keys, normalized numbers);
//! * [`hash`] — BLAKE2s-256 (RFC 7693), implemented in-repo;
//! * [`cache`] — a byte-budgeted strict-LRU result cache with hit / miss /
//!   eviction / rejection counters;
//! * [`protocol`] — the `greenness-serve/v1` newline-delimited JSON wire
//!   format and its structured error codes;
//! * [`admission`] — bounded-queue admission control with per-request
//!   deadlines and load shedding;
//! * [`service`] — the request handlers, wired cache → gate → analysis;
//! * [`server`] / [`client`] — the TCP front end and a blocking client;
//! * [`harness`] — the `bench-serve` load harness, including the
//!   deterministic single-threaded `--replay` mode whose response log and
//!   metrics snapshot are byte-identical across runs and `--jobs` values.
//!
//! The cache is the serving-layer analogue of the paper's static-energy
//! observation: most of a query's cost is work that does not need to be
//! redone, so the marginal energy of a warm query is near zero. See
//! EXPERIMENTS.md ("Serving and the static-energy argument").

pub mod admission;
pub mod cache;
pub mod client;
pub mod harness;
pub mod hash;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::ResultCache;
pub use client::{query, Client, RetryClient};
pub use harness::{replay_workload, run_load, run_replay, LoadMode, LoadReport, ReplayOutput};
pub use protocol::{ErrorCode, SCHEMA};
pub use server::Server;
pub use service::{Disposition, Outcome, Service, ServiceConfig};
