//! Content-address hashing, re-exported from `greenness-trace` so the serve
//! cache and the steering delta cache share one BLAKE2s implementation.

pub use greenness_trace::hash::{blake2s256, hex, Blake2s256};
