//! Nested JSON for the serve protocol.
//!
//! The trace crate's scanner handles only flat objects (all the journal
//! needs); requests carry nested `params`, so the serve layer brings its own
//! recursive-descent parser plus a **canonical** serializer used for content
//! addressing: object keys sorted bytewise, numbers normalized through
//! `f64` round-trip formatting (`1e3`, `1000` and `1000.0` all canonicalize
//! to `1000.0`), strings re-escaped minimally. Two requests that differ only
//! in key order, whitespace, or number spelling therefore hash identically.

use greenness_trace::fmt_f64;
use std::fmt::{self, Write};

/// Parser recursion limit; a request nested deeper than this is rejected
/// rather than allowed to exhaust the connection thread's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Numbers keep their raw source token so integer
/// callers (`as_u64`) lose no precision; canonicalization is where the
/// float normalization happens.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Raw number token, e.g. `"42"` or `"1.5e3"`.
    Num(String),
    /// Decoded string contents.
    Str(String),
    /// Array of values.
    Arr(Vec<Json>),
    /// Object members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut i = skip_ws(bytes, 0);
        let (value, next) = parse_value(bytes, i, 0)?;
        i = skip_ws(bytes, next);
        if i != bytes.len() {
            return Err(format!("trailing garbage at byte {i}"));
        }
        Ok(value)
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number as `u64` (integral tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize preserving source member order (used to echo request ids).
    pub fn to_string_raw(&self) -> String {
        let mut out = String::new();
        let _ = write_value(self, false, &mut out);
        out
    }

    /// Canonical serialization: sorted object keys, normalized numbers.
    /// This is the content-addressing pre-image.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        let _ = self.write_canonical(&mut out);
        out
    }

    /// Stream the canonical serialization into any [`fmt::Write`] sink —
    /// the content-addressing path writes straight into the hasher with no
    /// intermediate `String`.
    pub fn write_canonical<W: Write>(&self, out: &mut W) -> fmt::Result {
        write_value(self, true, out)
    }
}

/// Stream the canonical form of an object with the given members (an
/// already-filtered view, e.g. minus non-semantic keys) into `out`, without
/// cloning the members into a temporary [`Json::Obj`].
pub fn write_canonical_object<W: Write>(members: &[&(String, Json)], out: &mut W) -> fmt::Result {
    let mut sorted: Vec<&(String, Json)> = members.to_vec();
    sorted.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
    out.write_char('{')?;
    for (i, (k, val)) in sorted.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        out.write_char('"')?;
        write_escaped(k, out)?;
        out.write_str("\":")?;
        write_value(val, true, out)?;
    }
    out.write_char('}')
}

/// Streaming equivalent of `greenness_trace::escape_json`: identical output
/// bytes, no intermediate allocation. Runs of plain characters are emitted
/// as one `write_str` per run instead of char-at-a-time.
fn write_escaped<W: Write>(s: &str, out: &mut W) -> fmt::Result {
    let needs_escape = |c: char| matches!(c, '"' | '\\') || (c as u32) < 0x20;
    let mut rest = s;
    while let Some(pos) = rest.find(needs_escape) {
        out.write_str(&rest[..pos])?;
        let Some(c) = rest[pos..].chars().next() else {
            // Unreachable: `pos` indexes a match inside `rest`. Fall through
            // to emit the remainder unescaped rather than panic a worker.
            break;
        };
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c => write!(out, "\\u{:04x}", c as u32)?,
        }
        rest = &rest[pos + c.len_utf8()..];
    }
    out.write_str(rest)
}

fn write_value<W: Write>(v: &Json, canonical: bool, out: &mut W) -> fmt::Result {
    match v {
        Json::Null => out.write_str("null"),
        Json::Bool(true) => out.write_str("true"),
        Json::Bool(false) => out.write_str("false"),
        Json::Num(raw) => {
            if canonical {
                let f: f64 = raw.parse().unwrap_or(f64::NAN);
                out.write_str(&fmt_f64(f))
            } else {
                out.write_str(raw)
            }
        }
        Json::Str(s) => {
            out.write_char('"')?;
            write_escaped(s, out)?;
            out.write_char('"')
        }
        Json::Arr(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_value(item, canonical, out)?;
            }
            out.write_char(']')
        }
        Json::Obj(members) => {
            if canonical {
                let refs: Vec<&(String, Json)> = members.iter().collect();
                write_canonical_object(&refs, out)
            } else {
                out.write_char('{')?;
                for (i, (k, val)) in members.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_char('"')?;
                    write_escaped(k, out)?;
                    out.write_str("\":")?;
                    write_value(val, canonical, out)?;
                }
                out.write_char('}')
            }
        }
    }
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn parse_value(bytes: &[u8], i: usize, depth: usize) -> Result<(Json, usize), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    match bytes.get(i) {
        Some(b'{') => parse_object(bytes, i, depth),
        Some(b'[') => parse_array(bytes, i, depth),
        Some(b'"') => {
            let (s, next) = parse_string(bytes, i)?;
            Ok((Json::Str(s), next))
        }
        Some(b't') if bytes[i..].starts_with(b"true") => Ok((Json::Bool(true), i + 4)),
        Some(b'f') if bytes[i..].starts_with(b"false") => Ok((Json::Bool(false), i + 5)),
        Some(b'n') if bytes[i..].starts_with(b"null") => Ok((Json::Null, i + 4)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut j = i + 1;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || matches!(bytes[j], b'+' | b'-' | b'.' | b'e' | b'E'))
            {
                j += 1;
            }
            // The scan above only admits ASCII bytes, so this cannot fail;
            // report a parse error rather than panic if it somehow does.
            let Ok(raw) = std::str::from_utf8(&bytes[i..j]) else {
                return Err(format!("malformed number at byte {i}"));
            };
            if raw.parse::<f64>().is_err() {
                return Err(format!("malformed number '{raw}' at byte {i}"));
            }
            Ok((Json::Num(raw.to_string()), j))
        }
        _ => Err(format!("unexpected value at byte {i}")),
    }
}

fn parse_object(bytes: &[u8], mut i: usize, depth: usize) -> Result<(Json, usize), String> {
    i = skip_ws(bytes, i + 1);
    let mut members = Vec::new();
    if bytes.get(i) == Some(&b'}') {
        return Ok((Json::Obj(members), i + 1));
    }
    loop {
        let (key, next) = parse_string(bytes, i)?;
        i = skip_ws(bytes, next);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        i = skip_ws(bytes, i + 1);
        let (value, next) = parse_value(bytes, i, depth + 1)?;
        members.push((key, value));
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            Some(b'}') => return Ok((Json::Obj(members), i + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn parse_array(bytes: &[u8], mut i: usize, depth: usize) -> Result<(Json, usize), String> {
    i = skip_ws(bytes, i + 1);
    let mut items = Vec::new();
    if bytes.get(i) == Some(&b']') {
        return Ok((Json::Arr(items), i + 1));
    }
    loop {
        let (value, next) = parse_value(bytes, i, depth + 1)?;
        items.push(value);
        i = skip_ws(bytes, next);
        match bytes.get(i) {
            Some(b',') => i = skip_ws(bytes, i + 1),
            Some(b']') => return Ok((Json::Arr(items), i + 1)),
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn parse_string(bytes: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if bytes.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    i += 1;
    let mut s = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(i + 1..i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                i += 1;
            }
            _ => {
                let rest = std::str::from_utf8(&bytes[i..])
                    .map_err(|_| format!("invalid UTF-8 at byte {i}"))?;
                let c = rest.chars().next().ok_or("truncated string")?;
                s.push(c);
                i += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_documents_round_trip() {
        let text =
            r#"{"op":"sweep","params":{"cases":[1,2,3],"scale":"small"},"flag":true,"x":null}"#;
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("sweep"));
        let cases = v
            .get("params")
            .and_then(|p| p.get("cases"))
            .and_then(Json::as_arr)
            .expect("array");
        assert_eq!(
            cases.iter().filter_map(Json::as_u64).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        assert_eq!(v.to_string_raw(), text);
    }

    #[test]
    fn canonical_sorts_keys_and_normalizes_numbers() {
        let a = Json::parse(r#"{"b":1000, "a":{"y":2, "x":1e3}}"#).unwrap();
        let b = Json::parse(r#"{"a":{"x":1000.0,"y":2.0},"b":1.0e3}"#).unwrap();
        assert_eq!(a.to_canonical(), b.to_canonical());
        assert_eq!(a.to_canonical(), r#"{"a":{"x":1000.0,"y":2.0},"b":1000.0}"#);
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in ["", "{", "[1,", "{\"a\":}", "{\"a\":1} extra", "nul", "1..2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn streamed_escaping_matches_the_allocating_escape() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\slashes\\",
            "line\nbreaks\tand\rreturns",
            "control \u{1} \u{1f} edge",
            "unicode → snowman ☃ and emoji 🦀",
            "\"\\\n\u{0}",
        ] {
            let mut streamed = String::new();
            write_escaped(s, &mut streamed).expect("write to String");
            assert_eq!(streamed, greenness_trace::escape_json(s), "{s:?}");
        }
    }

    #[test]
    fn canonical_streaming_into_a_hasher_matches_the_string_path() {
        let doc = Json::parse(
            r#"{"op":"sweep","params":{"cases":[1,2,3],"txt":"a\"b\\c\nd","z":1e3},"id":7}"#,
        )
        .expect("parses");
        let via_string = crate::hash::blake2s256(doc.to_canonical().as_bytes());
        let mut hasher = crate::hash::Blake2s256::default();
        doc.write_canonical(&mut hasher).expect("stream");
        assert_eq!(hasher.finalize(), via_string);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut deep = String::new();
        for _ in 0..200 {
            deep.push('[');
        }
        deep.push('1');
        for _ in 0..200 {
            deep.push(']');
        }
        assert!(Json::parse(&deep).is_err());
    }
}
