//! The `greenness-serve/v1` wire protocol: newline-delimited JSON.
//!
//! Request: `{"schema":"greenness-serve/v1","id":1,"op":"compare",
//! "params":{...},"deadline_ms":2000}`. `id` (any scalar) and `deadline_ms`
//! are **non-semantic**: they are echoed / enforced but stripped before the
//! request is canonicalized and hashed, so retries with fresh ids still hit
//! the cache.
//!
//! Response envelopes — deliberately WITHOUT any cached/fresh marker, so a
//! repeated request is answered byte-identically whether it hit the cache
//! or not (hits are observable only through the metrics counters):
//!
//! * ok:    `{"schema":"greenness-serve/v1","id":1,"ok":true,"result":{...}}`
//! * error: `{"schema":"greenness-serve/v1","id":1,"ok":false,
//!           "error":{"code":"overloaded","message":"..."}}`

use greenness_trace::escape_json;

use crate::hash::Blake2s256;
use crate::json::Json;

/// The protocol schema tag, required on every request.
pub const SCHEMA: &str = "greenness-serve/v1";

/// Structured error codes of the `greenness-serve/v1` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON, unknown op, or invalid parameters.
    BadRequest,
    /// Admission queue full: the request was shed, try again later.
    Overloaded,
    /// The request's `deadline_ms` elapsed while it was queued.
    DeadlineExceeded,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The analysis itself failed.
    Internal,
}

impl ErrorCode {
    /// The wire label of this code.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed, validated request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The raw JSON of the client's `id`, echoed verbatim (`"null"` when
    /// absent).
    pub id: String,
    /// The operation name.
    pub op: String,
    /// The op's parameter object (empty object when absent).
    pub params: Json,
    /// Queueing deadline, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Content address: BLAKE2s-256 of the canonical request minus the
    /// non-semantic `id` / `deadline_ms` members.
    pub cache_key: [u8; 32],
}

/// Parse one request line. On error, returns the best-effort echoed id and
/// a message for a `bad_request` reply.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let no_id = || "null".to_string();
    let doc = Json::parse(line).map_err(|e| (no_id(), format!("malformed JSON: {e}")))?;
    let members = match &doc {
        Json::Obj(members) => members,
        _ => return Err((no_id(), "request must be a JSON object".to_string())),
    };
    let id = doc.get("id").map_or_else(no_id, Json::to_string_raw);
    match doc.get("id") {
        None | Some(Json::Null | Json::Num(_) | Json::Str(_)) => {}
        Some(_) => {
            return Err((no_id(), "id must be a scalar".to_string()));
        }
    }
    let err = |msg: &str| (id.clone(), msg.to_string());
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(err(&format!("unsupported schema '{s}' (want {SCHEMA})"))),
        None => return Err(err(&format!("missing schema (want \"{SCHEMA}\")"))),
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| err("missing op"))?
        .to_string();
    let params = match doc.get("params") {
        None => Json::Obj(Vec::new()),
        Some(p @ Json::Obj(_)) => p.clone(),
        Some(_) => return Err(err("params must be an object")),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| err("deadline_ms must be a non-negative integer"))?,
        ),
    };
    // Single pass: canonicalize the semantic members (everything but the
    // non-semantic `id` / `deadline_ms`) straight into the hasher — no
    // cloned Json tree, no intermediate canonical String.
    let semantic: Vec<&(String, Json)> = members
        .iter()
        .filter(|(k, _)| k != "id" && k != "deadline_ms")
        .collect();
    let mut hasher = Blake2s256::default();
    // Infallible: the hasher's `fmt::Write` never errors, so the canonical
    // serialization cannot fail — ignore the `fmt::Result` plumbing.
    let _ = crate::json::write_canonical_object(&semantic, &mut hasher);
    let cache_key = hasher.finalize();
    Ok(Request {
        id,
        op,
        params,
        deadline_ms,
        cache_key,
    })
}

/// A success envelope. `result` must already be serialized JSON.
pub fn ok_line(id: &str, result: &str) -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"id\":{id},\"ok\":true,\"result\":{result}}}")
}

/// The prefix of a success envelope, up to and including `"result":` — the
/// payload and the closing `}` follow as separate [`Response`] segments.
/// `ok_head(id) + result + "}"` is byte-identical to [`ok_line`], which the
/// envelope tests pin.
pub fn ok_head(id: &str) -> String {
    format!("{{\"schema\":\"{SCHEMA}\",\"id\":{id},\"ok\":true,\"result\":")
}

/// A response envelope split into wire segments, so a cached result is
/// written to the socket straight from the shared cache payload — no
/// intermediate `format!` copy of potentially megabytes of result JSON.
/// Responses without a shared payload (errors, control ops) are a single
/// head segment.
#[derive(Debug, Clone)]
pub struct Response {
    head: String,
    payload: Option<std::sync::Arc<Vec<u8>>>,
}

impl Response {
    /// A response that is already one complete line.
    pub fn whole(line: String) -> Response {
        Response {
            head: line,
            payload: None,
        }
    }

    /// A success response whose result is the shared `payload` — the very
    /// allocation the cache holds, so hit responses copy nothing.
    pub fn enveloped(id: &str, payload: std::sync::Arc<Vec<u8>>) -> Response {
        Response {
            head: ok_head(id),
            payload: Some(payload),
        }
    }

    /// The shared result payload, when this response carries one. The fleet
    /// router clones this `Arc` to fill replica caches without re-serializing
    /// (or even re-reading) the result.
    pub fn payload(&self) -> Option<&std::sync::Arc<Vec<u8>>> {
        self.payload.as_ref()
    }

    /// The wire segments in write order. The final newline is the writer's
    /// job ([`Response::write_to`] appends it).
    pub fn segments(&self) -> [&[u8]; 3] {
        match &self.payload {
            Some(payload) => [self.head.as_bytes(), payload, b"}"],
            None => [self.head.as_bytes(), b"", b""],
        }
    }

    /// Write the newline-terminated response to `w` segment by segment —
    /// the zero-copy path the server uses. Segments of one stream are
    /// written in order by its single connection thread, so framing is
    /// never torn.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        for segment in self.segments() {
            if !segment.is_empty() {
                w.write_all(segment)?;
            }
        }
        w.write_all(b"\n")
    }

    /// Materialize the full line (tests and the replay harness; the server
    /// streams [`Response::segments`] instead).
    pub fn to_line(&self) -> String {
        let [head, payload, tail] = self.segments();
        let mut line = Vec::with_capacity(head.len() + payload.len() + tail.len());
        line.extend_from_slice(head);
        line.extend_from_slice(payload);
        line.extend_from_slice(tail);
        // Segments are built from `String`s and cached UTF-8 payloads; a
        // corrupt payload is replaced rather than allowed to panic a worker.
        String::from_utf8(line)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
    }
}

/// An error envelope.
pub fn error_line(id: &str, code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"id\":{id},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        code.label(),
        escape_json(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_and_deadlines_do_not_change_the_cache_key() {
        let a = parse_request(
            r#"{"schema":"greenness-serve/v1","id":1,"op":"run","params":{"case":2}}"#,
        )
        .unwrap();
        let b = parse_request(
            r#"{"schema":"greenness-serve/v1","id":"retry-99","deadline_ms":50,"op":"run","params":{"case":2}}"#,
        )
        .unwrap();
        assert_eq!(a.cache_key, b.cache_key);
        assert_eq!(a.id, "1");
        assert_eq!(b.id, "\"retry-99\"");
        assert_eq!(b.deadline_ms, Some(50));
    }

    #[test]
    fn different_params_change_the_cache_key() {
        let a = parse_request(r#"{"schema":"greenness-serve/v1","op":"run","params":{"case":1}}"#)
            .unwrap();
        let b = parse_request(r#"{"schema":"greenness-serve/v1","op":"run","params":{"case":2}}"#)
            .unwrap();
        assert_ne!(a.cache_key, b.cache_key);
    }

    #[test]
    fn schema_is_mandatory() {
        let (_, msg) = parse_request(r#"{"op":"run"}"#).unwrap_err();
        assert!(msg.contains("schema"), "{msg}");
    }

    #[test]
    fn envelopes_are_wellformed_json() {
        let ok = ok_line("7", "{\"x\":1}");
        let err = error_line("null", ErrorCode::Overloaded, "queue \"full\"");
        for line in [&ok, &err] {
            crate::json::Json::parse(line).expect("envelope parses");
        }
        assert!(err.contains("\"code\":\"overloaded\""));
    }

    #[test]
    fn segmented_response_is_byte_identical_to_ok_line() {
        let payload = std::sync::Arc::new(b"{\"x\":1}".to_vec());
        let response = Response::enveloped("7", std::sync::Arc::clone(&payload));
        assert_eq!(response.to_line(), ok_line("7", "{\"x\":1}"));
        let mut wire = Vec::new();
        response.write_to(&mut wire).expect("write");
        assert_eq!(
            wire,
            format!("{}\n", ok_line("7", "{\"x\":1}")).into_bytes()
        );
        // The payload segment is the cache's own allocation, not a copy.
        let [_, seg, _] = response.segments();
        assert!(std::ptr::eq(seg.as_ptr(), payload.as_slice().as_ptr()));
        // Whole-line responses pass through untouched.
        let whole = Response::whole(error_line("1", ErrorCode::Internal, "x"));
        assert_eq!(whole.to_line(), error_line("1", ErrorCode::Internal, "x"));
        let mut wire = Vec::new();
        whole.write_to(&mut wire).expect("write");
        assert_eq!(wire.pop(), Some(b'\n'));
        assert_eq!(wire, whole.to_line().into_bytes());
    }

    /// Build a request JSON string with the given member order.
    fn request_with_order(pairs: &[(String, u64)], rotate: usize) -> String {
        let mut members: Vec<String> = pairs.iter().map(|(k, v)| format!("\"p{k}\":{v}")).collect();
        let len = members.len().max(1);
        members.rotate_left(rotate % len);
        format!(
            "{{\"op\":\"run\",\"schema\":\"{SCHEMA}\",\"params\":{{{}}}}}",
            members.join(",")
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn cache_key_is_stable_under_member_reordering(
            keys in prop::collection::vec((0u64..1000, 0u64..1_000_000), 1..8),
            rotate in 0usize..8,
        ) {
            // Dedup keys so both spellings describe the same object.
            let mut pairs: Vec<(String, u64)> = keys
                .into_iter()
                .map(|(k, v)| (format!("{k}"), v))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            pairs.dedup_by(|a, b| a.0 == b.0);
            let natural = request_with_order(&pairs, 0);
            let shuffled = request_with_order(&pairs, rotate);
            let a = parse_request(&natural).expect("natural parses");
            let b = parse_request(&shuffled).expect("shuffled parses");
            prop_assert_eq!(a.cache_key, b.cache_key);
        }

        #[test]
        fn cache_key_distinguishes_values(
            k in 0u64..50,
            v1 in 0u64..1_000_000,
            delta in 1u64..1_000_000,
        ) {
            let a = request_with_order(&[(format!("{k}"), v1)], 0);
            let b = request_with_order(&[(format!("{k}"), v1 + delta)], 0);
            let ra = parse_request(&a).expect("parses");
            let rb = parse_request(&b).expect("parses");
            prop_assert_ne!(ra.cache_key, rb.cache_key);
        }
    }
}
