//! The TCP front end: one listener, one thread per connection, newline-
//! delimited JSON both ways.
//!
//! Shutdown discipline: a granted `shutdown` op (or [`Server::shutdown`])
//! first closes the admission gate — queued requests are turned away with
//! `shutting_down`, in-flight ones run to completion — then raises the stop
//! flag. Connection threads notice the flag at their next read timeout and
//! hang up *between* responses; each response's segments are written in
//! order by the stream's single connection thread before the next read, so
//! output is never torn even mid-drain.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::{Service, ServiceConfig};

/// How long a connection thread blocks in `read` before re-checking the
/// stop flag.
const READ_TICK: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or send a `shutdown` op) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving in background threads.
    pub fn start(addr: &str, config: ServiceConfig) -> std::io::Result<Server> {
        Server::start_with_service(addr, Arc::new(Service::new(config)))
    }

    /// Bind `addr` and serve an **existing** service instance. The fleet
    /// uses this to expose a shard's service — cache, gate, and metrics
    /// included — on its own debug port while the router keeps handling the
    /// same instance in-process.
    pub fn start_with_service(addr: &str, service: Arc<Service>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, service, stop))
        };
        Ok(Server {
            addr,
            service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the ephemeral port lives here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (tests read its metrics).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Begin draining: close the gate, then raise the stop flag.
    pub fn shutdown(&self) {
        self.service.gate().shutdown();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Wait until the accept loop and every connection thread exit.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Block the calling thread until the server is asked to stop, then
    /// drain. This is what `greenness serve` does after printing the
    /// address.
    pub fn run_to_completion(self) {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::sleep(READ_TICK);
        }
        self.join();
    }
}

fn accept_loop(listener: TcpListener, service: Arc<Service>, stop: Arc<AtomicBool>) {
    let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let handle = std::thread::spawn(move || connection_loop(stream, &service, &stop));
                // A connection thread that panicked poisons nothing we care
                // about — the list is just join handles — so recover.
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(_) => break,
        }
    }
    for handle in conns.into_inner().unwrap_or_else(PoisonError::into_inner) {
        let _ = handle.join();
    }
}

fn connection_loop(mut stream: TcpStream, service: &Service, stop: &AtomicBool) {
    // A plain byte accumulator instead of BufReader: a buffered reader may
    // hold a partial line across a read *timeout*, and we need timeouts to
    // poll the stop flag without dropping bytes.
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // client hung up
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let trimmed = text.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let outcome = service.handle_line(trimmed);
                    if outcome.dropped {
                        // Injected connection-drop fault: hang up without
                        // responding; the client reconnects and retries.
                        return;
                    }
                    // Zero-copy: the response's payload segment is the
                    // cache's own allocation, streamed straight to the
                    // socket without assembling an intermediate line.
                    if outcome.response.write_to(&mut stream).is_err() {
                        return;
                    }
                    if outcome.shutdown {
                        let _ = stream.flush();
                        service.gate().shutdown();
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
