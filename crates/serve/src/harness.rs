//! The `bench-serve` load harness: a deterministic replay mode plus closed-
//! and open-loop live load generation.
//!
//! **Replay** (`--replay`) is the determinism anchor: a fixed request
//! sequence driven straight through an in-process [`Service`] on one
//! thread, producing a response log and a metrics snapshot that are
//! byte-identical across runs *and* across `--jobs` values (the sweep
//! executor guarantees value determinism; the service keeps every
//! schedule-dependent quantity — wall-clock latency above all — out of its
//! own registry, recording simulated `serve.virtual_s` instead).
//!
//! **Live** modes drive a running server over TCP. Closed-loop: each
//! connection fires its next request when the previous response lands —
//! measures service capacity. Open-loop: requests are launched on a fixed
//! schedule and latency is measured from the *scheduled* send time, so
//! queueing delay is charged to the server (no coordinated omission).

use std::time::Instant;

use greenness_trace::{metrics_file_json, percentile_nearest_rank};

use crate::client::RetryClient;
use crate::json::Json;
use crate::protocol::{self, ErrorCode, SCHEMA};
use crate::service::{Service, ServiceConfig};

/// Retry budget the live harness gives each connection per request.
const LOAD_RETRY_BUDGET: u32 = 8;

/// The fixed request mix. Templates repeat as the workload cycles, so any
/// run longer than one cycle exercises the cache.
const TEMPLATES: &[&str] = &[
    r#""op":"run","params":{"pipeline":"post","case":1}"#,
    r#""op":"compare","params":{"case":1}"#,
    r#""op":"run","params":{"pipeline":"insitu","case":1}"#,
    r#""op":"advisor","params":{"pass_bytes":4294967296,"passes":2,"pattern":"random"}"#,
    r#""op":"compare","params":{"case":1}"#,
    r#""op":"whatif","params":{"bytes":1073741824}"#,
    r#""op":"run","params":{"pipeline":"post","case":1}"#,
    r#""op":"sweep","params":{"cases":[1,2]}"#,
    r#""op":"compare","params":{"case":2}"#,
    r#""op":"advisor","params":{"pattern":"sequential","passes":10,"min_keep_fraction":0.2}"#,
];

/// The deterministic benchmark workload: `n` request lines with sequential
/// ids over the cycling template mix.
pub fn replay_workload(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "{{\"schema\":\"{SCHEMA}\",\"id\":{i},{}}}",
                TEMPLATES[i % TEMPLATES.len()]
            )
        })
        .collect()
}

/// What one replay run produced.
pub struct ReplayOutput {
    /// All response lines, newline-terminated, in request order.
    pub responses: String,
    /// The service metrics as a `greenness-metrics/v1` file.
    pub metrics: String,
    /// Requests re-driven after an injected connection drop (0 without a
    /// fault schedule).
    pub retries: u64,
}

/// Drive `requests` sequentially through a fresh in-process service.
/// Single-threaded by construction (request side); `config.jobs` still
/// parallelizes inside `sweep` requests without affecting any output byte.
/// With a fault schedule in `config`, a dropped request is retried like a
/// reconnecting client would, so the response log converges to one line per
/// request and stays byte-identical for a fixed fault seed.
pub fn run_replay(config: ServiceConfig, requests: &[String]) -> ReplayOutput {
    let service = Service::new(config);
    let budget = config.faults.map_or(0, |plan| plan.max_retries);
    let mut responses = String::new();
    let mut retries = 0u64;
    for request in requests {
        let mut attempt = 0u32;
        let line = loop {
            let outcome = service.handle_line(request);
            if !outcome.dropped {
                break outcome.line();
            }
            if attempt >= budget {
                break protocol::error_line(
                    "null",
                    ErrorCode::Internal,
                    "connection dropped; retry budget exhausted",
                );
            }
            attempt += 1;
            retries += 1;
        };
        responses.push_str(&line);
        responses.push('\n');
    }
    let metrics = metrics_file_json(&[("serve".to_string(), service.metrics_clone())]);
    ReplayOutput {
        responses,
        metrics,
        retries,
    }
}

/// Live load-generation mode.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Each connection sends its next request as soon as the previous
    /// response arrives.
    Closed,
    /// Requests launch on a fixed schedule at this aggregate rate.
    Open {
        /// Target request rate, requests per second.
        rate_rps: f64,
    },
}

/// Aggregated results of one live load run.
pub struct LoadReport {
    /// The mode that ran.
    pub mode: LoadMode,
    /// Requests sent.
    pub requests: usize,
    /// Connections used.
    pub conns: usize,
    /// Responses with `"ok":true`.
    pub ok: usize,
    /// Error responses (including shed requests — expected under open-loop
    /// overload).
    pub errors: usize,
    /// Reconnect-and-resend attempts after dropped connections. Counted
    /// separately from `errors`: a retried request that eventually succeeds
    /// is degradation, not failure.
    pub retries: u64,
    /// Wall-clock of the whole run, seconds.
    pub elapsed_s: f64,
    /// Client-side latency quantiles, milliseconds. Closed-loop: response
    /// minus send. Open-loop: response minus *scheduled* send.
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// `serve.cache.hits` after the run.
    pub cache_hits: u64,
    /// `serve.cache.misses` after the run.
    pub cache_misses: u64,
}

impl LoadReport {
    /// Cache hit rate over the run, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// One-line JSON rendering for the CLI.
    pub fn to_json(&self) -> String {
        use greenness_trace::fmt_f64;
        let mode = match self.mode {
            LoadMode::Closed => "\"closed\"".to_string(),
            LoadMode::Open { rate_rps } => {
                format!("{{\"open\":{{\"rate_rps\":{}}}}}", fmt_f64(rate_rps))
            }
        };
        format!(
            "{{\"mode\":{mode},\"requests\":{},\"conns\":{},\"ok\":{},\"errors\":{},\"retries\":{},\"elapsed_s\":{},\"throughput_rps\":{},\"latency_ms\":{{\"p50\":{},\"p90\":{},\"p99\":{}}},\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{}}}}}",
            self.requests,
            self.conns,
            self.ok,
            self.errors,
            self.retries,
            fmt_f64(self.elapsed_s),
            fmt_f64(self.requests as f64 / self.elapsed_s.max(1e-9)),
            fmt_f64(self.p50_ms),
            fmt_f64(self.p90_ms),
            fmt_f64(self.p99_ms),
            self.cache_hits,
            self.cache_misses,
            fmt_f64(self.hit_rate())
        )
    }
}

/// Drive `requests` benchmark requests at a live server over `conns`
/// connections and measure client-side latency.
pub fn run_load(
    addr: &str,
    requests: usize,
    conns: usize,
    mode: LoadMode,
) -> std::io::Result<LoadReport> {
    let conns = conns.clamp(1, requests.max(1));
    let workload = replay_workload(requests);
    let start = Instant::now();
    // Per connection: (ok, retries, latencies_ms).
    let mut per_conn: Vec<(usize, u64, Vec<f64>)> = Vec::new();

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for c in 0..conns {
            let workload = &workload;
            handles.push(
                scope.spawn(move || -> std::io::Result<(usize, u64, Vec<f64>)> {
                    let mut client = RetryClient::new(addr, LOAD_RETRY_BUDGET);
                    let mut ok = 0usize;
                    let mut latencies = Vec::new();
                    for (i, request) in workload.iter().enumerate() {
                        if i % conns != c {
                            continue;
                        }
                        let scheduled = match mode {
                            LoadMode::Closed => Instant::now(),
                            LoadMode::Open { rate_rps } => {
                                let at = start
                                    + std::time::Duration::from_secs_f64(
                                        i as f64 / rate_rps.max(1e-9),
                                    );
                                if let Some(wait) = at.checked_duration_since(Instant::now()) {
                                    std::thread::sleep(wait);
                                }
                                at
                            }
                        };
                        let response = client.roundtrip(request)?;
                        latencies.push(scheduled.elapsed().as_secs_f64() * 1e3);
                        if response.contains("\"ok\":true") {
                            ok += 1;
                        }
                    }
                    Ok((ok, client.retries, latencies))
                }),
            );
        }
        for handle in handles {
            // A worker panic is a harness bug, but it must surface as a
            // structured error, not take the whole process down with it.
            let joined = handle
                .join()
                .map_err(|_| std::io::Error::other("load worker thread panicked"))?;
            per_conn.push(joined?);
        }
        Ok(())
    })?;

    let elapsed_s = start.elapsed().as_secs_f64();
    let ok: usize = per_conn.iter().map(|(k, _, _)| k).sum();
    let retries: u64 = per_conn.iter().map(|(_, r, _)| r).sum();
    let (p50_ms, p90_ms, p99_ms) =
        latency_percentiles(per_conn.iter().map(|(_, _, ms)| ms.as_slice()));
    let (hits, misses) = fetch_cache_counters(addr)?;
    Ok(LoadReport {
        mode,
        requests,
        conns,
        ok,
        errors: requests - ok,
        retries,
        elapsed_s,
        p50_ms,
        p90_ms,
        p99_ms,
        cache_hits: hits,
        cache_misses: misses,
    })
}

/// The report's (p50, p90, p99) in ms: exact nearest-rank percentiles over
/// the merged raw per-connection samples, not the log-bucketed `Histogram`
/// estimate. At small n the bucket interpolation reported values no sample
/// ever had (p99 of a single sample came back below it) — exactly where a
/// latency report misleads the most.
fn latency_percentiles<'a>(per_conn: impl Iterator<Item = &'a [f64]>) -> (f64, f64, f64) {
    let mut latencies: Vec<f64> = per_conn.flatten().copied().collect();
    latencies.sort_by(f64::total_cmp);
    (
        percentile_nearest_rank(&latencies, 0.50),
        percentile_nearest_rank(&latencies, 0.90),
        percentile_nearest_rank(&latencies, 0.99),
    )
}

fn fetch_cache_counters(addr: &str) -> std::io::Result<(u64, u64)> {
    let line = crate::client::query(
        addr,
        &format!("{{\"schema\":\"{SCHEMA}\",\"op\":\"metrics\"}}"),
    )?;
    let doc =
        Json::parse(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let counter = |name: &str| {
        doc.get("result")
            .and_then(|r| r.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    Ok((counter("serve.cache.hits"), counter("serve.cache.misses")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_repeats_templates() {
        let a = replay_workload(25);
        let b = replay_workload(25);
        assert_eq!(a, b);
        // Same template, different ids, ten positions apart.
        assert_ne!(a[0], a[10]);
        assert!(a[0].contains("\"id\":0"));
        assert!(a[10].contains("\"id\":10"));
    }

    #[test]
    fn replay_is_byte_identical_across_runs_and_jobs() {
        let requests = replay_workload(12);
        let base = ServiceConfig {
            jobs: 1,
            ..ServiceConfig::default()
        };
        let again = run_replay(base, &requests);
        let first = run_replay(base, &requests);
        assert_eq!(first.responses, again.responses);
        assert_eq!(first.metrics, again.metrics);
        let wide = run_replay(
            ServiceConfig {
                jobs: 8,
                ..ServiceConfig::default()
            },
            &requests,
        );
        assert_eq!(
            first.responses, wide.responses,
            "jobs must not leak into responses"
        );
        assert_eq!(
            first.metrics, wide.metrics,
            "jobs must not leak into metrics"
        );
    }

    #[test]
    fn faulted_replay_retries_drops_and_stays_byte_identical() {
        use greenness_faults::FaultPlan;
        let requests = replay_workload(12);
        let config = ServiceConfig {
            faults: Some(FaultPlan::with_seed(7)),
            jobs: 1,
            ..ServiceConfig::default()
        };
        let a = run_replay(config, &requests);
        let b = run_replay(ServiceConfig { jobs: 8, ..config }, &requests);
        assert_eq!(a.responses, b.responses, "jobs must not leak under faults");
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.retries, b.retries);
        assert!(a.retries > 0, "seed 7 must drop at least one request");
        // Every drop was retried to completion: one ok line per request.
        assert_eq!(a.responses.lines().count(), 12);
        assert!(a.responses.lines().all(|l| l.contains("\"ok\":true")));
    }

    #[test]
    fn report_percentiles_are_exact_over_merged_connections() {
        // One sample total (n = 1): every percentile IS that sample.
        let single: [&[f64]; 1] = [&[12.5]];
        assert_eq!(latency_percentiles(single.into_iter()), (12.5, 12.5, 12.5));
        // Four samples split unevenly across two connections, unsorted:
        // merged sorted = [1, 2, 3, 4]; nearest ranks are p50 → 2 (rank
        // ceil(0.5·4) = 2), p90 → 4 (rank ceil(3.6) = 4), p99 → 4 (rank
        // ceil(3.96) = 4 — the last element, never index 4).
        let split: [&[f64]; 2] = [&[4.0, 1.0], &[3.0, 2.0]];
        assert_eq!(latency_percentiles(split.into_iter()), (2.0, 4.0, 4.0));
        // No samples: all zeros rather than a panic.
        let empty: [&[f64]; 0] = [];
        assert_eq!(latency_percentiles(empty.into_iter()), (0.0, 0.0, 0.0));
    }

    #[test]
    fn replay_exercises_the_cache() {
        let requests = replay_workload(20); // two full template cycles
        let out = run_replay(ServiceConfig::default(), &requests);
        assert!(
            out.metrics.contains("\"serve.cache.hits\""),
            "hits counter missing:\n{}",
            out.metrics
        );
        assert_eq!(out.responses.lines().count(), 20);
        assert!(out.responses.lines().all(|l| l.contains("\"ok\":true")));
    }
}
