//! The query service: request handlers over the lab's analyses, fronted by
//! the content-addressed cache and the admission gate.
//!
//! Handling order is deliberate: parse → control ops (`metrics`,
//! `shutdown`) → **cache lookup** → admission → execute → cache insert.
//! Cache hits are answered before touching the gate, so a warm working set
//! keeps serving at full speed even when every execution slot is busy — the
//! serving-layer analogue of the paper's static-energy argument: work you
//! don't redo is energy you don't spend.
//!
//! Every response for a given request id is byte-identical whether it was
//! computed or replayed from cache; hits are visible only in the
//! `serve.cache.*` counters.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use greenness_core::advisor::{self, IoBehavior, WorkloadProfile};
use greenness_core::steering::Adjustment;
use greenness_core::sweep;
use greenness_core::whatif::WhatIfAnalysis;
use greenness_core::{CaseComparison, ExperimentSetup, PipelineConfig, PipelineKind};
use greenness_faults::{FaultInjector, FaultPlan, Site};
use greenness_platform::DiskModel;
use greenness_power::GreenMetrics;
use greenness_steer::{AttachSpec, EngineConfig, SessionEngine, SteerError};
use greenness_trace::fmt_f64;
use greenness_trace::MetricsRegistry;

use crate::admission::{Denial, Gate};
use crate::cache::ResultCache;
use crate::json::Json;
use crate::protocol::{self, ErrorCode, Request, Response};

/// How long an injected slow-handler fault stalls the worker. Wall-clock
/// only — it never enters any response or metric, so replay output stays
/// byte-identical.
const SLOW_FAULT_STALL: Duration = Duration::from_millis(2);

/// Lock a service mutex, recovering from poisoning: a panicking handler
/// must never brick the server, and every value these mutexes guard
/// (cache, metrics, fault schedule) is valid at every await-free step.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of one service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads for `sweep` requests. Changes wall-clock only — sweep
    /// results are bit-identical for any value (PR-1 executor guarantee).
    pub jobs: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Concurrent execution slots.
    pub slots: usize,
    /// Bounded waiting-room depth; a request arriving beyond it is shed.
    pub queue_depth: usize,
    /// Seeded fault schedule: injected connection drops (the server hangs
    /// up without responding) and slow handlers (a fixed wall-clock stall).
    /// `None` — the default — is the fault-free fast path.
    pub faults: Option<FaultPlan>,
    /// Maximum concurrently attached steering sessions (`steer.*` ops).
    pub session_slots: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: 4,
            cache_bytes: 1 << 20,
            slots: 4,
            queue_depth: 16,
            faults: None,
            session_slots: 8,
        }
    }
}

/// How the service disposed of a request — the router-facing summary the
/// fleet layer accounts by without re-parsing response lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Answered from the result cache.
    Hit,
    /// Computed, cached, and answered.
    Miss,
    /// A control op (`metrics` / `shutdown`).
    Control,
    /// A stateful steering op (`steer.*`): applied to a session, never
    /// cached.
    Session,
    /// A structured error reply (bad request, shed, or handler failure).
    Error,
    /// An injected connection drop: no reply was produced.
    Dropped,
}

/// One handled request: the response (no trailing newline) plus whether
/// the request asked the server to drain.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The NDJSON response, in wire segments. Cache hits and misses carry
    /// the shared cache payload here — the server writes it without an
    /// intermediate envelope copy.
    pub response: Response,
    /// `true` for a granted `shutdown` op.
    pub shutdown: bool,
    /// `true` when an injected connection-drop fault fired: the caller must
    /// hang up (or, in replay, retry) instead of delivering the response.
    pub dropped: bool,
    /// What happened, for router-side accounting.
    pub disposition: Disposition,
    /// Simulated seconds the request cost to compute (`0.0` on hits,
    /// control ops, and errors) — the same quantity the service observes
    /// into `serve.virtual_s` on a miss.
    pub virtual_s: f64,
}

impl Outcome {
    /// A plain reply carrying one complete line.
    fn reply(line: String) -> Outcome {
        Outcome {
            response: Response::whole(line),
            shutdown: false,
            dropped: false,
            disposition: Disposition::Error,
            virtual_s: 0.0,
        }
    }

    /// The materialized response line (tests and the replay harness; the
    /// server streams `self.response` segment by segment instead).
    pub fn line(&self) -> String {
        self.response.to_line()
    }
}

/// The seeded per-site fault schedules of one service instance.
struct ServeFaults {
    conn: FaultInjector,
    handler: FaultInjector,
}

/// Which injected serve fault fired for a request.
enum ServeFault {
    Drop,
    Slow,
}

/// The shared service state behind every connection.
pub struct Service {
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    gate: Gate,
    metrics: Mutex<MetricsRegistry>,
    faults: Option<Mutex<ServeFaults>>,
    steer: Mutex<SessionEngine>,
}

impl Service {
    /// A fresh service.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            cache: Mutex::new(ResultCache::new(config.cache_bytes)),
            gate: Gate::new(config.slots, config.queue_depth),
            metrics: Mutex::new(MetricsRegistry::default()),
            faults: config.faults.map(|plan| {
                Mutex::new(ServeFaults {
                    conn: plan.injector(Site::ServeConn, 0),
                    handler: plan.injector(Site::ServeHandler, 1),
                })
            }),
            steer: Mutex::new(SessionEngine::new(EngineConfig {
                session_slots: config.session_slots,
                jobs: config.jobs,
                ..EngineConfig::default()
            })),
            config,
        }
    }

    /// The admission gate (the server drains through it on shutdown).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// Snapshot of the service metrics registry.
    pub fn metrics_clone(&self) -> MetricsRegistry {
        lock(&self.metrics).clone()
    }

    /// Fill `key` with `payload` **if absent**, as the most recently used
    /// entry. Returns whether the entry was inserted. This is the fleet
    /// router's replication path: it must not count a hit or a miss (the
    /// hit/miss ledger belongs to real lookups), but evictions and
    /// rejections it causes are real and are counted.
    pub fn cache_fill(&self, key: [u8; 32], payload: Arc<Vec<u8>>) -> bool {
        {
            let cache = lock(&self.cache);
            if cache.contains(&key) {
                return false;
            }
        }
        self.cache_put(key, payload);
        true
    }

    /// Read `key` without touching hit/miss counters or recency — the
    /// rebalancer copies entries between shards through this.
    pub fn cache_share(&self, key: &[u8; 32]) -> Option<Arc<Vec<u8>>> {
        lock(&self.cache).peek(key)
    }

    /// All cached keys in sorted order (a deterministic scan order for
    /// rebalancing).
    pub fn cache_keys(&self) -> Vec<[u8; 32]> {
        lock(&self.cache).keys_sorted()
    }

    /// Handle one request line and produce one response line.
    pub fn handle_line(&self, line: &str) -> Outcome {
        let req = match protocol::parse_request(line) {
            Ok(req) => req,
            Err((id, msg)) => {
                self.count("serve.bad_request");
                return Outcome::reply(protocol::error_line(&id, ErrorCode::BadRequest, &msg));
            }
        };
        // Control ops bypass cache, admission, the request counters, and
        // fault injection, so that observing the service never perturbs
        // what is observed.
        match req.op.as_str() {
            "metrics" => {
                let body = lock(&self.metrics).to_json();
                return Outcome {
                    disposition: Disposition::Control,
                    ..Outcome::reply(protocol::ok_line(&req.id, &body))
                };
            }
            "shutdown" => {
                // Close the gate here, not in the TCP server: any embedding
                // (the fleet router, the replay harness, tests) that grants a
                // shutdown op begins draining immediately, and a request
                // parked in the bounded wait queue is woken and shed with a
                // structured `shutting_down` error instead of sleeping out
                // its deadline.
                self.gate.shutdown();
                return Outcome {
                    shutdown: true,
                    disposition: Disposition::Control,
                    ..Outcome::reply(protocol::ok_line(&req.id, "{\"status\":\"draining\"}"))
                };
            }
            _ => {}
        }
        // Steering ops are stateful: they bypass the result cache, check the
        // drain flag before mutating anything, and take their fault-schedule
        // slot only *after* the op committed (see `handle_steer`).
        if req.op.starts_with("steer.") {
            return self.handle_steer(&req);
        }
        // The fault schedule fires before any request accounting: a dropped
        // connection never handled the request, so only the fault counter
        // moves and the retry (if any) is accounted like a fresh arrival.
        match self.next_fault() {
            Some(ServeFault::Drop) => {
                self.count("faults.serve.conn");
                return Outcome {
                    dropped: true,
                    disposition: Disposition::Dropped,
                    ..Outcome::reply(String::new())
                };
            }
            Some(ServeFault::Slow) => {
                self.count("faults.serve.handler");
                std::thread::sleep(SLOW_FAULT_STALL);
            }
            None => {}
        }
        self.count("serve.requests");

        // Cache first: hits never burn an execution slot, and the payload
        // crosses to the wire as the cache's own allocation — an Arc clone,
        // not a byte copy.
        if let Some(payload) = self.cache_get(&req.cache_key) {
            self.count("serve.cache.hits");
            return Outcome {
                response: Response::enveloped(&req.id, payload),
                shutdown: false,
                dropped: false,
                disposition: Disposition::Hit,
                virtual_s: 0.0,
            };
        }
        self.count("serve.cache.misses");

        let deadline = req.deadline_ms.map(Duration::from_millis);
        let _permit = match self.gate.admit(deadline) {
            Ok(permit) => permit,
            Err(denial) => {
                let (counter, code, msg) = match denial {
                    Denial::Overloaded => (
                        "serve.shed.overloaded",
                        ErrorCode::Overloaded,
                        "admission queue full; retry later",
                    ),
                    Denial::DeadlineExceeded => (
                        "serve.shed.deadline",
                        ErrorCode::DeadlineExceeded,
                        "deadline elapsed while queued",
                    ),
                    Denial::ShuttingDown => (
                        "serve.shed.shutting_down",
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    ),
                };
                self.count(counter);
                return Outcome::reply(protocol::error_line(&req.id, code, msg));
            }
        };

        match self.execute(&req) {
            Ok((result, virtual_s)) => {
                self.count("serve.ok");
                if virtual_s > 0.0 {
                    // Deterministic cost accounting: simulated seconds the
                    // request cost to compute, observed only on misses — the
                    // replay harness's stand-in for wall-clock latency.
                    let mut m = lock(&self.metrics);
                    m.observe("serve.virtual_s", virtual_s);
                }
                // One allocation serves both the cache entry and this
                // response: warm and cold replies are byte-identical by
                // construction, not by convention.
                let payload = Arc::new(result.into_bytes());
                self.cache_put(req.cache_key, Arc::clone(&payload));
                Outcome {
                    response: Response::enveloped(&req.id, payload),
                    shutdown: false,
                    dropped: false,
                    disposition: Disposition::Miss,
                    virtual_s,
                }
            }
            Err((code, msg)) => {
                self.count("serve.err");
                Outcome::reply(protocol::error_line(&req.id, code, &msg))
            }
        }
    }

    fn count(&self, name: &'static str) {
        lock(&self.metrics).incr(name, 1);
    }

    /// Handle a `steer.*` op. Ordering is load-bearing:
    ///
    /// 1. **Drain check first.** A draining server refuses the op *before*
    ///    touching the session, so no frame is ever torn mid-render; the
    ///    refusal embeds the session's deterministic resume token.
    /// 2. **Execute under the engine lock**, mirroring the engine's counter
    ///    movement into the service metrics registry.
    /// 3. **Fault slot last.** An injected connection drop fires only after
    ///    the op committed (drop-after-apply), so the client's retry of the
    ///    same seq exercises the byte-identical replay path instead of
    ///    double-applying.
    fn handle_steer(&self, req: &Request) -> Outcome {
        let session = req
            .params
            .get("session")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if self.gate.is_draining() {
            let token = lock(&self.steer).resume_token(&session);
            self.count("serve.shed.shutting_down");
            return Outcome::reply(protocol::error_line(
                &req.id,
                ErrorCode::ShuttingDown,
                &format!(
                    "server is draining; re-attach session '{session}' elsewhere and resume with token {token}"
                ),
            ));
        }
        self.count("serve.requests");
        let executed = self.execute_steer(req, &session);
        let dropped = match self.next_fault() {
            Some(ServeFault::Drop) => {
                self.count("faults.serve.conn");
                true
            }
            Some(ServeFault::Slow) => {
                self.count("faults.serve.handler");
                std::thread::sleep(SLOW_FAULT_STALL);
                false
            }
            None => false,
        };
        if dropped {
            return Outcome {
                dropped: true,
                disposition: Disposition::Dropped,
                ..Outcome::reply(String::new())
            };
        }
        match executed {
            Ok((result, virtual_s)) => {
                self.count("serve.ok");
                Outcome {
                    response: Response::whole(protocol::ok_line(&req.id, &result)),
                    shutdown: false,
                    dropped: false,
                    disposition: Disposition::Session,
                    virtual_s,
                }
            }
            Err((code, msg)) => {
                self.count("serve.err");
                Outcome::reply(protocol::error_line(&req.id, code, &msg))
            }
        }
    }

    /// Parse and apply one steering op against the session engine.
    fn execute_steer(&self, req: &Request, session: &str) -> OpResult {
        if session.is_empty() {
            return Err(bad("session must be a non-empty string"));
        }
        let params = &req.params;
        let mut engine = lock(&self.steer);
        let before = engine.counters();
        let result = match req.op.as_str() {
            "steer.attach" => {
                let mut spec = AttachSpec::default();
                if let Some(v) = params.get("interval") {
                    spec.interval = v
                        .as_u64()
                        .ok_or_else(|| bad("interval must be an integer"))?;
                }
                if let Some(v) = params.get("timesteps") {
                    spec.timesteps = v
                        .as_u64()
                        .ok_or_else(|| bad("timesteps must be an integer"))?;
                }
                engine.attach(session, &spec)
            }
            "steer.adjust" => {
                let seq = steer_seq(params)?;
                let adj = parse_adjustment(params)?;
                engine.adjust(session, seq, &adj)
            }
            "steer.render" => {
                let seq = steer_seq(params)?;
                let steps = match params.get("steps") {
                    None => 1,
                    Some(v) => v.as_u64().ok_or_else(|| bad("steps must be an integer"))?,
                };
                engine.render(session, seq, steps)
            }
            "steer.detach" => engine.detach(session, steer_seq(params)?),
            other => {
                return Err(bad(format!(
                    "unknown steer op '{other}' (expected steer.attach|steer.adjust|steer.render|steer.detach)"
                )))
            }
        };
        let after = engine.counters();
        drop(engine);
        {
            let mut m = lock(&self.metrics);
            for ((name, was), (_, now)) in before.iter().zip(after) {
                if now > *was {
                    m.incr(name, now - was);
                }
            }
        }
        match result {
            Ok((line, energy_j)) => Ok((
                format!(
                    "{{\"steer\":\"{}\",\"energy_j\":{}}}",
                    greenness_trace::escape_json(&line),
                    fmt_f64(energy_j)
                ),
                0.0,
            )),
            Err(e) => Err(steer_err(e)),
        }
    }

    /// Consume the next fault-schedule slot (one per handled request).
    fn next_fault(&self) -> Option<ServeFault> {
        let mut faults = lock(self.faults.as_ref()?);
        if faults.conn.next().is_some() {
            return Some(ServeFault::Drop);
        }
        if faults.handler.next().is_some() {
            return Some(ServeFault::Slow);
        }
        None
    }

    fn cache_get(&self, key: &[u8; 32]) -> Option<Arc<Vec<u8>>> {
        let mut cache = lock(&self.cache);
        let payload = cache.get(key)?;
        match std::str::from_utf8(&payload) {
            Ok(_) => Some(payload),
            Err(_) => {
                // A corrupt payload must never panic the worker: evict the
                // entry, reclassify the lookup as a miss (the caller will
                // recompute), and count the corruption.
                cache.remove(key);
                cache.hits -= 1;
                cache.misses += 1;
                drop(cache);
                self.count("serve.cache.corrupt");
                None
            }
        }
    }

    fn cache_put(&self, key: [u8; 32], payload: Arc<Vec<u8>>) {
        let (evictions, rejected) = {
            let mut cache = lock(&self.cache);
            let before = (cache.evictions, cache.rejected);
            cache.insert(key, payload);
            (cache.evictions - before.0, cache.rejected - before.1)
        };
        if evictions + rejected > 0 {
            let mut m = lock(&self.metrics);
            m.incr("serve.cache.evictions", evictions);
            m.incr("serve.cache.rejected", rejected);
        }
    }

    /// Dispatch to the op handler. Returns the serialized result plus the
    /// simulated seconds the computation covered.
    fn execute(&self, req: &Request) -> Result<(String, f64), (ErrorCode, String)> {
        match req.op.as_str() {
            "run" => op_run(&req.params),
            "compare" => op_compare(&req.params),
            "whatif" => op_whatif(&req.params),
            "advisor" => op_advisor(&req.params),
            "sweep" => op_sweep(&req.params, self.config.jobs),
            other => Err((
                ErrorCode::BadRequest,
                format!("unknown op '{other}' (expected run|compare|whatif|advisor|sweep|steer.attach|steer.adjust|steer.render|steer.detach|metrics|shutdown)"),
            )),
        }
    }
}

type OpResult = Result<(String, f64), (ErrorCode, String)>;

fn bad(msg: impl Into<String>) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg.into())
}

/// Map a pipeline error onto the protocol: config/solver problems are the
/// caller's (bad request), storage/corruption are the server's (internal).
/// Either way the request dies as an error envelope, never a panic.
fn pipeline_err(e: greenness_core::pipeline::PipelineError) -> (ErrorCode, String) {
    use greenness_core::pipeline::PipelineError;
    match &e {
        PipelineError::Config(_) | PipelineError::Solver(_) => {
            (ErrorCode::BadRequest, e.to_string())
        }
        PipelineError::Storage { .. } | PipelineError::CorruptSnapshot { .. } => {
            (ErrorCode::Internal, e.to_string())
        }
    }
}

/// Map a steering refusal onto the protocol: slot exhaustion is
/// back-pressure (`overloaded`), pipeline failures keep the pipeline
/// mapping, everything else is the caller's mistake.
fn steer_err(e: SteerError) -> (ErrorCode, String) {
    match e {
        SteerError::Slots { .. } => (ErrorCode::Overloaded, e.to_string()),
        SteerError::Pipeline(pe) => pipeline_err(pe),
        other => (ErrorCode::BadRequest, other.to_string()),
    }
}

/// The mandatory per-op sequence number (attach is seq 0; ops start at 1).
fn steer_seq(params: &Json) -> Result<u64, (ErrorCode, String)> {
    params
        .get("seq")
        .and_then(Json::as_u64)
        .filter(|s| *s >= 1)
        .ok_or_else(|| bad("seq must be an integer >= 1"))
}

/// Parse the `steer.adjust` payload into a typed [`Adjustment`].
fn parse_adjustment(params: &Json) -> Result<Adjustment, (ErrorCode, String)> {
    let kind = params
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("kind must be io_interval|resolution|camera"))?;
    match kind {
        "io_interval" => {
            let n = params
                .get("io_interval")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("io_interval must be an integer"))?;
            Ok(Adjustment::IoInterval(n))
        }
        "resolution" => {
            let width = params
                .get("width")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("width must be an integer"))? as usize;
            let height = params
                .get("height")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("height must be an integer"))? as usize;
            Ok(Adjustment::Resolution { width, height })
        }
        "camera" => {
            let colormap = match params
                .get("colormap")
                .and_then(Json::as_str)
                .unwrap_or("hot")
            {
                "viridis" => greenness_viz::Colormap::Viridis,
                "hot" => greenness_viz::Colormap::Hot,
                "coolwarm" => greenness_viz::Colormap::CoolWarm,
                "gray" => greenness_viz::Colormap::Gray,
                other => {
                    return Err(bad(format!(
                        "unknown colormap '{other}' (expected viridis|hot|coolwarm|gray)"
                    )))
                }
            };
            let range = match params.get("range") {
                None => None,
                Some(v) => {
                    let arr = v
                        .as_arr()
                        .ok_or_else(|| bad("range must be a [lo, hi] array"))?;
                    let (Some(lo), Some(hi)) = (
                        arr.first().and_then(Json::as_f64),
                        arr.get(1).and_then(Json::as_f64),
                    ) else {
                        return Err(bad("range must be a [lo, hi] array of numbers"));
                    };
                    // partial_cmp so a NaN bound is rejected, not accepted.
                    let ordered = lo.partial_cmp(&hi) == Some(std::cmp::Ordering::Less);
                    if arr.len() != 2 || !ordered {
                        return Err(bad("range must be [lo, hi] with lo < hi"));
                    }
                    Some((lo, hi))
                }
            };
            Ok(Adjustment::Camera { colormap, range })
        }
        other => Err(bad(format!(
            "unknown adjustment kind '{other}' (expected io_interval|resolution|camera)"
        ))),
    }
}

/// The case-study workload at the requested scale. `"small"` (default) is
/// the millisecond-scale 64×64 grid with the paper's I/O cadence
/// (interval 1/2/8 for cases 1/2/3); `"paper"` is the full §IV-C workload.
fn workload(params: &Json) -> Result<(u32, PipelineConfig), (ErrorCode, String)> {
    let case = match params.get("case") {
        None => 1,
        Some(v) => v
            .as_u64()
            .filter(|n| (1..=3).contains(n))
            .ok_or_else(|| bad("case must be 1, 2, or 3"))? as u32,
    };
    let scale = match params.get("scale") {
        None => "small",
        Some(v) => v.as_str().ok_or_else(|| bad("scale must be a string"))?,
    };
    let cfg = match scale {
        "small" => PipelineConfig::small(match case {
            1 => 1,
            2 => 2,
            _ => 8,
        }),
        "paper" => PipelineConfig::case_study(case),
        other => {
            return Err(bad(format!(
                "unknown scale '{other}' (expected small|paper)"
            )))
        }
    };
    Ok((case, cfg))
}

fn metrics_json(m: &GreenMetrics) -> String {
    format!(
        "{{\"execution_time_s\":{},\"average_power_w\":{},\"peak_power_w\":{},\"energy_j\":{}}}",
        fmt_f64(m.execution_time_s),
        fmt_f64(m.average_power_w),
        fmt_f64(m.peak_power_w),
        fmt_f64(m.energy_j)
    )
}

fn op_run(params: &Json) -> OpResult {
    let kind: PipelineKind = match params.get("pipeline") {
        None => PipelineKind::InSitu,
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad("pipeline must be a string"))?
            .parse()
            .map_err(bad)?,
    };
    let (case, cfg) = workload(params)?;
    let report = greenness_core::experiment::run(kind, &cfg, &ExperimentSetup::default())
        .map_err(pipeline_err)?;
    let result = format!(
        "{{\"pipeline\":\"{}\",\"case\":{case},\"config\":\"{}\",\"metrics\":{}}}",
        kind.label(),
        greenness_trace::escape_json(&report.config_label),
        metrics_json(&report.metrics)
    );
    Ok((result, report.metrics.execution_time_s))
}

fn comparison_json(c: &CaseComparison) -> String {
    format!(
        "{{\"case\":{},\"post\":{},\"insitu\":{},\"energy_savings_pct\":{},\"time_reduction_pct\":{},\"power_increase_pct\":{},\"efficiency_improvement_pct\":{}}}",
        c.case,
        metrics_json(&c.post.metrics),
        metrics_json(&c.insitu.metrics),
        fmt_f64(c.energy_savings_pct()),
        fmt_f64(c.time_reduction_pct()),
        fmt_f64(c.power_increase_pct()),
        fmt_f64(c.efficiency_improvement_pct())
    )
}

fn comparison_virtual_s(c: &CaseComparison) -> f64 {
    c.post.metrics.execution_time_s + c.insitu.metrics.execution_time_s
}

fn op_compare(params: &Json) -> OpResult {
    let (case, cfg) = workload(params)?;
    let c = CaseComparison::run_config(case, &cfg, &ExperimentSetup::default())
        .map_err(pipeline_err)?;
    Ok((comparison_json(&c), comparison_virtual_s(&c)))
}

/// Resolve an optional `device` param against the device zoo: the analysis
/// re-runs as if the node's disk were that device (the serving-layer view
/// of the tiered-storage question — "would this workload still need
/// reorganizing on an NVMe tier?").
fn device_param(params: &Json) -> Result<(ExperimentSetup, String), (ErrorCode, String)> {
    let mut setup = ExperimentSetup::default();
    let Some(v) = params.get("device") else {
        return Ok((setup, "hdd".to_string()));
    };
    let name = v.as_str().ok_or_else(|| bad("device must be a string"))?;
    let model = DiskModel::device_zoo()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, m)| m)
        .ok_or_else(|| {
            bad(format!(
                "unknown device '{name}' (expected dram|pmem|nvme|ssd|hdd)"
            ))
        })?;
    setup.spec.disk = model;
    Ok((setup, name.to_string()))
}

fn op_whatif(params: &Json) -> OpResult {
    let bytes = match params.get("bytes") {
        None => 4 * 1024 * 1024 * 1024,
        Some(v) => v
            .as_u64()
            .filter(|b| *b > 0)
            .ok_or_else(|| bad("bytes must be a positive integer"))?,
    };
    let (setup, device) = device_param(params)?;
    let w = WhatIfAnalysis::run(&setup, bytes)
        .map_err(|e| (ErrorCode::Internal, format!("fio failed: {e}")))?;
    let fio: Vec<String> = w
        .fio
        .iter()
        .map(|r| {
            format!(
                "{{\"kind\":\"{}\",\"execution_time_s\":{},\"full_system_power_w\":{},\"disk_dyn_energy_kj\":{},\"full_system_energy_kj\":{}}}",
                r.kind.label(),
                fmt_f64(r.execution_time_s),
                fmt_f64(r.full_system_power_w),
                fmt_f64(r.disk_dyn_energy_kj),
                fmt_f64(r.full_system_energy_kj)
            )
        })
        .collect();
    let virtual_s: f64 = w.fio.iter().map(|r| r.execution_time_s).sum();
    let result = format!(
        "{{\"bytes\":{bytes},\"device\":\"{device}\",\"random_io_energy_kj\":{},\"reorganized_io_energy_kj\":{},\"retained_fraction\":{},\"fio\":[{}]}}",
        fmt_f64(w.random_io_energy_kj),
        fmt_f64(w.reorganized_io_energy_kj),
        fmt_f64(w.retained_fraction()),
        fio.join(",")
    );
    Ok((result, virtual_s))
}

fn op_advisor(params: &Json) -> OpResult {
    let pass_bytes = match params.get("pass_bytes") {
        None => 1024 * 1024 * 1024,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad("pass_bytes must be an integer"))?,
    };
    let passes = match params.get("passes") {
        None => 1,
        Some(v) => v
            .as_u64()
            .filter(|p| *p <= u32::MAX as u64)
            .ok_or_else(|| bad("passes must be an integer"))? as u32,
    };
    let behavior = match params.get("pattern").map(Json::as_str) {
        None | Some(Some("random")) => IoBehavior::Random {
            op_bytes: match params.get("op_bytes") {
                None => 4096,
                Some(v) => v
                    .as_u64()
                    .filter(|b| *b > 0)
                    .ok_or_else(|| bad("op_bytes must be a positive integer"))?,
            },
        },
        Some(Some("sequential")) => IoBehavior::Sequential,
        Some(Some(other)) => {
            return Err(bad(format!(
                "unknown pattern '{other}' (expected sequential|random)"
            )))
        }
        Some(None) => return Err(bad("pattern must be a string")),
    };
    let needs_exploration = match params.get("needs_exploration") {
        None => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| bad("needs_exploration must be a bool"))?,
    };
    let min_keep_fraction = match params.get("min_keep_fraction") {
        None => 1.0,
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad("min_keep_fraction must be a number"))?,
    };
    // `recommend` asserts on this; validate here so a bad request cannot
    // panic a worker.
    if !(min_keep_fraction > 0.0 && min_keep_fraction <= 1.0) {
        return Err(bad("min_keep_fraction must be in (0, 1]"));
    }
    let profile = WorkloadProfile {
        pass_bytes,
        passes,
        behavior,
        needs_exploration,
        min_keep_fraction,
    };
    let (setup, device) = device_param(params)?;
    let advice = advisor::recommend(&setup.spec, &profile);
    let technique = match advice.technique {
        advisor::Technique::InSitu => "\"insitu\"".to_string(),
        advisor::Technique::Reorganize => "\"reorganize\"".to_string(),
        advisor::Technique::DataSampling { keep_fraction } => {
            format!(
                "{{\"sampling\":{{\"keep_fraction\":{}}}}}",
                fmt_f64(keep_fraction)
            )
        }
        advisor::Technique::KeepPostProcessing => "\"keep_post_processing\"".to_string(),
    };
    let result = format!(
        "{{\"device\":\"{device}\",\"current_io_j\":{},\"insitu_io_j\":{},\"reorg_cost_j\":{},\"reorg_pass_j\":{},\"sampling_pass_j\":{},\"technique\":{technique}}}",
        fmt_f64(advice.current_io_j),
        fmt_f64(advice.insitu_io_j),
        fmt_f64(advice.reorg_cost_j),
        fmt_f64(advice.reorg_pass_j),
        fmt_f64(advice.sampling_pass_j)
    );
    // The advisor is a closed-form model; it simulates no pipeline time.
    Ok((result, 0.0))
}

fn op_sweep(params: &Json, jobs: usize) -> OpResult {
    let cases: Vec<u32> = match params.get("cases") {
        None => vec![1, 2, 3],
        Some(v) => {
            let items = v.as_arr().ok_or_else(|| bad("cases must be an array"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(
                    item.as_u64()
                        .filter(|n| (1..=3).contains(n))
                        .ok_or_else(|| bad("cases entries must be 1, 2, or 3"))?
                        as u32,
                );
            }
            if out.is_empty() {
                return Err(bad("cases must be non-empty"));
            }
            out
        }
    };
    let scale = match params.get("scale") {
        None => "small",
        Some(v) => v.as_str().ok_or_else(|| bad("scale must be a string"))?,
    };
    let configs: Vec<(u32, PipelineConfig)> = cases
        .iter()
        .map(|&n| {
            let cfg = match scale {
                "small" => Ok(PipelineConfig::small(match n {
                    1 => 1,
                    2 => 2,
                    _ => 8,
                })),
                "paper" => Ok(PipelineConfig::case_study(n)),
                other => Err(bad(format!(
                    "unknown scale '{other}' (expected small|paper)"
                ))),
            }?;
            Ok((n, cfg))
        })
        .collect::<Result<_, (ErrorCode, String)>>()?;
    let grid = sweep::config_grid(&ExperimentSetup::default(), &configs);
    let results = sweep::run_sweep(grid, jobs, &sweep::silent_progress()).map_err(|e| match e {
        sweep::SweepError::DuplicateKey { .. } => bad(format!("{e}")),
        other => (ErrorCode::Internal, format!("{other}")),
    })?;
    let comps = sweep::comparisons(&results);
    let virtual_s: f64 = comps.iter().map(comparison_virtual_s).sum();
    let body: Vec<String> = comps.iter().map(comparison_json).collect();
    let result = format!(
        "{{\"scale\":\"{scale}\",\"comparisons\":[{}]}}",
        body.join(",")
    );
    Ok((result, virtual_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> Service {
        Service::new(ServiceConfig::default())
    }

    fn line(op_and_params: &str) -> String {
        format!("{{\"schema\":\"{}\",{op_and_params}}}", protocol::SCHEMA)
    }

    #[test]
    fn run_request_round_trips() {
        let s = svc();
        let out = s.handle_line(&line(
            r#""id":1,"op":"run","params":{"pipeline":"post","case":1}"#,
        ));
        assert!(!out.shutdown);
        let doc = Json::parse(&out.line()).expect("response parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("id").and_then(Json::as_u64), Some(1));
        let energy = doc
            .get("result")
            .and_then(|r| r.get("metrics"))
            .and_then(|m| m.get("energy_j"))
            .and_then(Json::as_f64)
            .expect("energy in result");
        assert!(energy > 0.0);
    }

    #[test]
    fn warm_hit_is_byte_identical_and_counted() {
        let s = svc();
        let request = line(r#""id":7,"op":"compare","params":{"case":2}"#);
        let cold = s.handle_line(&request);
        let warm = s.handle_line(&request);
        assert_eq!(
            cold.line(),
            warm.line(),
            "warm response must be byte-identical"
        );
        let m = s.metrics_clone();
        assert_eq!(m.counter("serve.cache.hits"), 1);
        assert_eq!(m.counter("serve.cache.misses"), 1);
        assert_eq!(m.counter("serve.requests"), 2);
    }

    #[test]
    fn unknown_ops_and_bad_params_are_structured_errors() {
        let s = svc();
        for (body, expect) in [
            (r#""op":"frobnicate""#, "bad_request"),
            (r#""op":"run","params":{"case":9}"#, "bad_request"),
            (
                r#""op":"advisor","params":{"min_keep_fraction":0}"#,
                "bad_request",
            ),
            (r#""op":"sweep","params":{"cases":[]}"#, "bad_request"),
        ] {
            let out = s.handle_line(&line(body));
            let doc = Json::parse(&out.line()).expect("error response parses");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{body}");
            let code = doc
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .expect("code present")
                .to_string();
            assert_eq!(code, expect, "{body}");
        }
        // Errors are never cached: the same bad request misses twice.
        let m = s.metrics_clone();
        assert_eq!(m.counter("serve.cache.hits"), 0);
    }

    #[test]
    fn whatif_device_param_changes_the_answer() {
        let s = svc();
        let random_kj = |device: &str| {
            let out = s.handle_line(&line(&format!(
                r#""op":"whatif","params":{{"bytes":1073741824,"device":"{device}"}}"#
            )));
            let doc = Json::parse(&out.line()).expect("parses");
            assert_eq!(
                doc.get("result")
                    .and_then(|r| r.get("device"))
                    .and_then(Json::as_str),
                Some(device.to_string()).as_deref()
            );
            doc.get("result")
                .and_then(|r| r.get("random_io_energy_kj"))
                .and_then(Json::as_f64)
                .expect("random_io_energy_kj present")
        };
        let hdd = random_kj("hdd");
        let dram = random_kj("dram");
        assert!(
            dram < hdd / 10.0,
            "dram random I/O ({dram} kJ) should be far cheaper than hdd ({hdd} kJ)"
        );
        let bad = s.handle_line(&line(
            r#""op":"whatif","params":{"bytes":1,"device":"floppy"}"#,
        ));
        let doc = Json::parse(&bad.line()).expect("parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn advisor_recommends_over_the_wire() {
        let s = svc();
        let out = s.handle_line(&line(
            r#""op":"advisor","params":{"pass_bytes":4294967296,"passes":2,"pattern":"random","needs_exploration":true}"#,
        ));
        let doc = Json::parse(&out.line()).expect("parses");
        assert_eq!(
            doc.get("result")
                .and_then(|r| r.get("technique"))
                .and_then(Json::as_str),
            Some("reorganize")
        );
    }

    #[test]
    fn metrics_and_shutdown_are_control_ops() {
        let s = svc();
        s.handle_line(&line(r#""op":"run","params":{}"#));
        let metrics = s.handle_line(&line(r#""op":"metrics""#));
        let doc = Json::parse(&metrics.line()).expect("parses");
        let counters = doc
            .get("result")
            .and_then(|r| r.get("counters"))
            .expect("counters object");
        assert_eq!(
            counters.get("serve.requests").and_then(Json::as_u64),
            Some(1)
        );
        let down = s.handle_line(&line(r#""op":"shutdown""#));
        assert!(down.shutdown);
        assert!(down.line().contains("\"status\":\"draining\""));
        // Control ops did not count as requests.
        let m = s.metrics_clone();
        assert_eq!(m.counter("serve.requests"), 1);
    }

    #[test]
    fn poisoned_locks_recover_instead_of_bricking_the_service() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let s = svc();
        s.handle_line(&line(r#""id":1,"op":"advisor","params":{}"#));
        // A handler that panics while holding a lock poisons it; the next
        // request must still be served.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = s.metrics.lock().unwrap();
            panic!("poison the metrics lock");
        }));
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = s.cache.lock().unwrap();
            panic!("poison the cache lock");
        }));
        let out = s.handle_line(&line(r#""id":2,"op":"advisor","params":{}"#));
        assert!(out.line().contains("\"ok\":true"), "{}", out.line());
        assert_eq!(s.metrics_clone().counter("serve.requests"), 2);
    }

    #[test]
    fn corrupt_cached_payload_is_evicted_and_recomputed() {
        let s = svc();
        let request = line(r#""id":3,"op":"advisor","params":{"passes":2}"#);
        let cold = s.handle_line(&request);
        // Corrupt the cached payload behind the service's back.
        let key = protocol::parse_request(&request).expect("parses").cache_key;
        s.cache.lock().unwrap().insert(key, vec![0xff, 0xfe, 0x80]);
        let recomputed = s.handle_line(&request);
        assert_eq!(cold.line(), recomputed.line(), "recompute, not garbage");
        let warm = s.handle_line(&request);
        assert_eq!(cold.line(), warm.line());
        let m = s.metrics_clone();
        assert_eq!(m.counter("serve.cache.corrupt"), 1);
        assert_eq!(m.counter("serve.cache.hits"), 1, "only the third lookup");
        assert_eq!(m.counter("serve.cache.misses"), 2);
    }

    #[test]
    fn injected_serve_faults_are_seeded_and_reproducible() {
        let run = || {
            let s = Service::new(ServiceConfig {
                faults: Some(FaultPlan::with_seed(5)),
                ..ServiceConfig::default()
            });
            let mut dropped = Vec::new();
            for i in 0..40 {
                let out =
                    s.handle_line(&line(&format!(r#""id":{i},"op":"advisor","params":{{}}"#)));
                dropped.push(out.dropped);
            }
            (dropped, s.metrics_clone())
        };
        let (a, ma) = run();
        let (b, mb) = run();
        assert_eq!(a, b, "same seed, same drop pattern");
        assert_eq!(ma.to_json(), mb.to_json());
        let drops = a.iter().filter(|d| **d).count() as u64;
        assert!(drops > 0, "seed 5 must fire at least one drop");
        assert_eq!(ma.counter("faults.serve.conn"), drops);
        assert!(ma.counter("faults.serve.handler") > 0);
        // A dropped request never reached the request counters.
        assert_eq!(ma.counter("serve.requests"), 40 - drops);
    }

    #[test]
    fn shutdown_op_frees_parked_requests_immediately() {
        use std::time::{Duration, Instant};
        // Regression: the shutdown op must close the gate itself. Before it
        // did, an in-process embedding (fleet router, replay harness) that
        // granted a shutdown left queued requests to sleep out their full
        // deadlines — here 10 s — because only the TCP server closed the
        // gate.
        let s = Arc::new(Service::new(ServiceConfig {
            slots: 1,
            queue_depth: 2,
            ..ServiceConfig::default()
        }));
        let _held = s.gate().admit(None).expect("occupy the only slot");
        let parked = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let out = s.handle_line(&line(
                    r#""id":9,"op":"advisor","params":{},"deadline_ms":10000"#,
                ));
                (out, t0.elapsed())
            })
        };
        // Let the request park in the wait queue, then drain via the op.
        std::thread::sleep(Duration::from_millis(50));
        let down = s.handle_line(&line(r#""op":"shutdown""#));
        assert!(down.shutdown);
        let (out, waited) = parked.join().expect("no panic");
        let doc = Json::parse(&out.line()).expect("parses");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("shutting_down"),
            "{}",
            out.line()
        );
        assert!(
            waited < Duration::from_secs(5),
            "parked request waited {waited:?} instead of being shed on drain"
        );
        assert_eq!(s.metrics_clone().counter("serve.shed.shutting_down"), 1);
    }

    #[test]
    fn cache_fill_and_share_move_payloads_without_counting_lookups() {
        let s = svc();
        let request = line(r#""id":4,"op":"advisor","params":{}"#);
        let key = protocol::parse_request(&request).expect("parses").cache_key;
        s.handle_line(&request);
        let shared = s.cache_share(&key).expect("computed entry is shareable");
        assert_eq!(s.cache_keys(), vec![key]);
        // Fill into a second instance: inserted once, a no-op when present.
        let other = svc();
        assert!(other.cache_fill(key, Arc::clone(&shared)));
        assert!(!other.cache_fill(key, shared));
        let warm = other.handle_line(&request);
        assert!(warm.line().contains("\"ok\":true"));
        let m = other.metrics_clone();
        assert_eq!(m.counter("serve.cache.hits"), 1, "the real lookup counts");
        assert_eq!(m.counter("serve.cache.misses"), 0, "the fill does not");
    }

    #[test]
    fn steer_session_round_trips_over_the_wire() {
        let s = svc();
        let result_str = |out: &Outcome, key: &str| {
            let doc = Json::parse(&out.line()).expect("parses");
            assert_eq!(
                doc.get("ok").and_then(Json::as_bool),
                Some(true),
                "{}",
                out.line()
            );
            doc.get("result")
                .and_then(|r| r.get(key))
                .and_then(Json::as_str)
                .expect("steer field")
                .to_string()
        };
        let attach = s.handle_line(&line(
            r#""id":1,"op":"steer.attach","params":{"session":"s1","interval":2,"timesteps":10}"#,
        ));
        assert_eq!(attach.disposition, Disposition::Session);
        assert!(result_str(&attach, "steer").contains("resumed=false"));
        let render = s.handle_line(&line(
            r#""id":2,"op":"steer.render","params":{"session":"s1","seq":1,"steps":3}"#,
        ));
        assert!(result_str(&render, "steer").contains("step=3"));
        let adjust = s.handle_line(&line(
            r#""id":3,"op":"steer.adjust","params":{"session":"s1","seq":2,"kind":"io_interval","io_interval":4}"#,
        ));
        assert!(result_str(&adjust, "steer").contains("delta_j="));
        let retry = s.handle_line(&line(
            r#""id":3,"op":"steer.adjust","params":{"session":"s1","seq":2,"kind":"io_interval","io_interval":4}"#,
        ));
        assert_eq!(
            adjust.line(),
            retry.line(),
            "replayed seq must be byte-identical"
        );
        let detach = s.handle_line(&line(
            r#""id":4,"op":"steer.detach","params":{"session":"s1","seq":3}"#,
        ));
        assert!(result_str(&detach, "steer").starts_with("detached"));
        let m = s.metrics_clone();
        assert_eq!(m.counter("steer.attach"), 1);
        assert_eq!(m.counter("steer.render.incremental"), 1);
        assert_eq!(m.counter("steer.adjust"), 1);
        assert_eq!(m.counter("steer.replayed"), 1);
        assert_eq!(m.counter("steer.delta.computed"), 1);
        assert_eq!(m.counter("serve.cache.misses"), 0, "steer bypasses cache");
    }

    #[test]
    fn draining_refuses_steer_ops_with_a_resume_token_before_mutating() {
        let s = svc();
        s.handle_line(&line(
            r#""id":1,"op":"steer.attach","params":{"session":"s1"}"#,
        ));
        s.handle_line(&line(
            r#""id":2,"op":"steer.render","params":{"session":"s1","seq":1,"steps":2}"#,
        ));
        s.gate().shutdown();
        let refused = s.handle_line(&line(
            r#""id":3,"op":"steer.render","params":{"session":"s1","seq":2,"steps":2}"#,
        ));
        let doc = Json::parse(&refused.line()).expect("parses");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("shutting_down"),
            "{}",
            refused.line()
        );
        let msg = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .expect("message");
        assert!(msg.contains("token"), "{msg}");
        // Nothing mutated: the session is still at seq 1, and the refused
        // op was never half-applied (no torn frame).
        assert_eq!(s.metrics_clone().counter("steer.render.incremental"), 1);
    }

    #[test]
    fn steer_errors_are_structured_envelopes() {
        let s = svc();
        for (body, expect) in [
            (r#""op":"steer.render","params":{"seq":1}"#, "bad_request"),
            (
                r#""op":"steer.render","params":{"session":"nope","seq":1}"#,
                "bad_request",
            ),
            (
                r#""op":"steer.adjust","params":{"session":"s","seq":1,"kind":"warp"}"#,
                "bad_request",
            ),
            (
                r#""op":"steer.attach","params":{"session":"s","interval":0}"#,
                "bad_request",
            ),
        ] {
            let out = s.handle_line(&line(body));
            let doc = Json::parse(&out.line()).expect("parses");
            assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false), "{body}");
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some(expect),
                "{body}"
            );
        }
    }

    #[test]
    fn session_slots_shed_as_overloaded() {
        let s = Service::new(ServiceConfig {
            session_slots: 1,
            ..ServiceConfig::default()
        });
        s.handle_line(&line(
            r#""id":1,"op":"steer.attach","params":{"session":"s1"}"#,
        ));
        let refused = s.handle_line(&line(
            r#""id":2,"op":"steer.attach","params":{"session":"s2"}"#,
        ));
        let doc = Json::parse(&refused.line()).expect("parses");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded"),
            "{}",
            refused.line()
        );
    }

    #[test]
    fn virtual_seconds_accumulate_only_on_misses() {
        let s = svc();
        let request = line(r#""id":1,"op":"run","params":{"case":1}"#);
        s.handle_line(&request);
        s.handle_line(&request);
        let m = s.metrics_clone();
        let h = m.histogram("serve.virtual_s").expect("histogram exists");
        assert_eq!(h.count(), 1, "hit must not re-observe");
    }
}
