//! Admission control: a bounded waiting room in front of a fixed number of
//! execution slots.
//!
//! A request either gets a slot immediately, waits in a queue of bounded
//! depth, or is shed with a structured error: [`Denial::Overloaded`] when
//! the queue is already full, [`Denial::DeadlineExceeded`] when its
//! per-request deadline elapses while queued, and [`Denial::ShuttingDown`]
//! once the server begins draining (waiters are woken and turned away, but
//! requests already holding a slot run to completion — that is the drain).

use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Denial {
    /// The waiting queue is full; the request was shed immediately.
    Overloaded,
    /// The request's deadline elapsed before a slot freed up.
    DeadlineExceeded,
    /// The gate is draining; no new admissions.
    ShuttingDown,
}

#[derive(Debug)]
struct GateState {
    active: usize,
    waiting: usize,
    shutting_down: bool,
}

/// The admission gate. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Gate {
    slots: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// An execution slot, released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// A gate with `slots` concurrent executions and at most `queue_depth`
    /// waiters.
    pub fn new(slots: usize, queue_depth: usize) -> Gate {
        Gate {
            slots: slots.max(1),
            queue_depth,
            state: Mutex::new(GateState {
                active: 0,
                waiting: 0,
                shutting_down: false,
            }),
            freed: Condvar::new(),
        }
    }

    /// Acquire a slot, waiting up to `deadline` (forever when `None`).
    pub fn admit(&self, deadline: Option<Duration>) -> Result<Permit<'_>, Denial> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.shutting_down {
            return Err(Denial::ShuttingDown);
        }
        if state.active < self.slots {
            state.active += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.queue_depth {
            return Err(Denial::Overloaded);
        }
        state.waiting += 1;
        let expires = deadline.map(|d| Instant::now() + d);
        loop {
            state = match expires {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        state.waiting -= 1;
                        drop(state);
                        // This waiter may have been woken by a permit drop's
                        // single notify; leaving without passing it on would
                        // strand another waiter asleep next to a free slot
                        // until its own deadline fires.
                        self.freed.notify_one();
                        return Err(Denial::DeadlineExceeded);
                    }
                    let (guard, _) = self
                        .freed
                        .wait_timeout(state, at - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
                None => self
                    .freed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner),
            };
            if state.shutting_down {
                state.waiting -= 1;
                drop(state);
                self.freed.notify_one();
                return Err(Denial::ShuttingDown);
            }
            if state.active < self.slots {
                state.waiting -= 1;
                state.active += 1;
                return Ok(Permit { gate: self });
            }
        }
    }

    /// Whether the gate has begun draining. Stateful handlers (steering
    /// sessions) check this *before* mutating anything, so a drain never
    /// leaves a half-applied op behind.
    pub fn is_draining(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutting_down
    }

    /// Begin draining: refuse new admissions and wake every waiter so it can
    /// observe the shutdown. Slots already granted stay valid.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.shutting_down = true;
        drop(state);
        self.freed.notify_all();
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self
            .gate
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.active -= 1;
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn slots_then_queue_then_shed() {
        let gate = Gate::new(1, 0);
        let held = gate.admit(None).expect("first admission");
        // Slot busy, queue depth 0: immediate shed.
        assert_eq!(
            gate.admit(Some(Duration::from_secs(5))).unwrap_err(),
            Denial::Overloaded
        );
        drop(held);
        gate.admit(None).expect("slot freed");
    }

    #[test]
    fn queued_requests_time_out() {
        let gate = Gate::new(1, 4);
        let _held = gate.admit(None).expect("first admission");
        let start = Instant::now();
        let denial = gate.admit(Some(Duration::from_millis(30))).unwrap_err();
        assert_eq!(denial, Denial::DeadlineExceeded);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn shutdown_wakes_waiters_and_refuses_new_work() {
        let gate = Arc::new(Gate::new(1, 4));
        let held = gate.admit(None).expect("first admission");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Some(Duration::from_secs(10))).map(|_| ()))
        };
        // Let the waiter park, then drain.
        std::thread::sleep(Duration::from_millis(50));
        gate.shutdown();
        assert_eq!(
            waiter.join().expect("no panic").unwrap_err(),
            Denial::ShuttingDown
        );
        assert_eq!(gate.admit(None).unwrap_err(), Denial::ShuttingDown);
        drop(held); // in-flight work still completes and releases cleanly
    }

    #[test]
    fn a_departing_waiter_passes_its_wakeup_on() {
        // One slot, two queued waiters with very different deadlines. When
        // the held permit drops near waiter A's deadline, A may consume the
        // drop's single notify just to discover it has timed out; without
        // the re-notify on that early return, B would sleep out its full
        // 10 s deadline next to a free slot.
        let gate = Arc::new(Gate::new(1, 4));
        let held = gate.admit(None).expect("first admission");
        let a = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Some(Duration::from_millis(60))).map(|_| ()))
        };
        let b = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let r = gate.admit(Some(Duration::from_secs(10))).map(|_| ());
                (r, t0.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(55));
        drop(held);
        let _ = a.join().expect("no panic");
        let (admitted, waited) = b.join().expect("no panic");
        admitted.expect("slot must reach the surviving waiter");
        assert!(
            waited < Duration::from_secs(5),
            "waiter B slept {waited:?} next to a free slot"
        );
    }

    #[test]
    fn freed_slot_goes_to_a_waiter() {
        let gate = Arc::new(Gate::new(1, 1));
        let held = gate.admit(None).expect("first admission");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let permit = gate.admit(Some(Duration::from_secs(10)));
                permit.map(|_| ()).is_ok()
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(held);
        assert!(waiter.join().expect("no panic"));
    }
}
